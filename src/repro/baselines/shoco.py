"""SHOCO-like short-string entropy packer (Section III / Figure 4).

SHOCO compresses short ASCII strings by exploiting character and successor
frequencies: when the current character is among the most frequent ones and
the next character is among the most frequent *successors* of that character,
the pair is packed into a single byte; otherwise characters pass through
verbatim.  The output is binary (packed bytes use the high bit), there is no
per-record dictionary, and the frequency tables can be trained on a domain
corpus — exactly the profile the paper describes for SHOCO: decent ratios on
short strings, but neither readable output nor a SMILES-aware model.

This is a from-scratch reimplementation of that scheme (two-character packs
with trainable tables), not a byte-exact port of the original C library.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence

from .interface import BaselineCodec, CodecProperties

#: Number of lead characters that can start a pack (3 bits).
LEAD_TABLE_SIZE = 8
#: Number of successor characters per lead (4 bits).
SUCCESSOR_TABLE_SIZE = 16
#: High bit marks a packed byte; plain ASCII passes through with the bit clear.
PACK_MARKER = 0x80


class ShocoModel:
    """Trained frequency model: lead characters and per-lead successor tables."""

    def __init__(self, leads: Sequence[str], successors: Dict[str, List[str]]):
        if len(leads) > LEAD_TABLE_SIZE:
            raise ValueError(f"at most {LEAD_TABLE_SIZE} lead characters allowed")
        self.leads: List[str] = list(leads)
        self.successors: Dict[str, List[str]] = {
            lead: list(succ[:SUCCESSOR_TABLE_SIZE]) for lead, succ in successors.items()
        }
        self._lead_index = {ch: i for i, ch in enumerate(self.leads)}
        self._successor_index = {
            lead: {ch: i for i, ch in enumerate(succ)}
            for lead, succ in self.successors.items()
        }

    @classmethod
    def train(cls, corpus: Sequence[str]) -> "ShocoModel":
        """Build the model from character / successor frequencies of *corpus*."""
        char_counts: Counter = Counter()
        successor_counts: Dict[str, Counter] = defaultdict(Counter)
        for line in corpus:
            for a, b in zip(line, line[1:]):
                char_counts[a] += 1
                successor_counts[a][b] += 1
            if line:
                char_counts[line[-1]] += 1
        leads = [ch for ch, _ in char_counts.most_common(LEAD_TABLE_SIZE) if ord(ch) < 0x80]
        successors = {
            lead: [ch for ch, _ in successor_counts[lead].most_common(SUCCESSOR_TABLE_SIZE)
                   if ord(ch) < 0x80]
            for lead in leads
        }
        return cls(leads, successors)

    def pack_indices(self, a: str, b: str) -> Optional[int]:
        """Packed byte for the character pair ``a, b``, or ``None`` if not packable."""
        lead_idx = self._lead_index.get(a)
        if lead_idx is None:
            return None
        succ_idx = self._successor_index.get(a, {}).get(b)
        if succ_idx is None:
            return None
        return PACK_MARKER | (lead_idx << 4) | succ_idx

    def unpack(self, byte: int) -> str:
        """Character pair encoded by a packed byte."""
        lead_idx = (byte >> 4) & 0x07
        succ_idx = byte & 0x0F
        lead = self.leads[lead_idx]
        return lead + self.successors[lead][succ_idx]


class ShocoCodec(BaselineCodec):
    """Record-oriented SHOCO-style compressor with a trainable model."""

    properties = CodecProperties(
        name="SHOCO",
        readable_output=False,
        random_access=True,
        shared_dictionary=True,  # the trained tables are shared across inputs
    )

    def __init__(self) -> None:
        self.model: Optional[ShocoModel] = None

    def fit(self, corpus: Sequence[str]) -> "ShocoCodec":
        """Train the character / successor tables on *corpus*."""
        self.model = ShocoModel.train(corpus)
        return self

    def _require_model(self) -> ShocoModel:
        if self.model is None:
            raise RuntimeError("ShocoCodec.fit must be called before compressing")
        return self.model

    def compress_record(self, record: str) -> bytes:
        model = self._require_model()
        out = bytearray()
        i = 0
        n = len(record)
        while i < n:
            if i + 1 < n:
                packed = model.pack_indices(record[i], record[i + 1])
                if packed is not None:
                    out.append(packed)
                    i += 2
                    continue
            ch = ord(record[i])
            if ch >= 0x80:
                raise ValueError("SHOCO handles ASCII input only")
            out.append(ch)
            i += 1
        return bytes(out)

    def decompress_record(self, payload: bytes) -> str:
        model = self._require_model()
        out: List[str] = []
        for byte in payload:
            if byte & PACK_MARKER:
                out.append(model.unpack(byte))
            else:
                out.append(chr(byte))
        return "".join(out)
