"""Common interface for the baseline compressors compared in Figure 4.

Every baseline (and ZSMILES itself, through an adapter) implements
:class:`BaselineCodec`: train on a corpus, compress/decompress single records,
and report whether it preserves the two properties the paper's use case needs —
readable output and per-record random access.  The Figure 4 experiment driver
only talks to this interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class CodecProperties:
    """Qualitative properties of a codec, as discussed in Section III.

    Attributes
    ----------
    name:
        Display name used in reports and figures.
    readable_output:
        ``True`` when compressed records contain only printable text.
    random_access:
        ``True`` when each record can be decompressed independently (one
        record per line / per envelope, no shared stream state).
    shared_dictionary:
        ``True`` when one dictionary serves any input dataset (rather than an
        input-dependent symbol table).
    """

    name: str
    readable_output: bool
    random_access: bool
    shared_dictionary: bool


class BaselineCodec(abc.ABC):
    """Abstract record-oriented compressor used by the tool-comparison benches."""

    #: Qualitative properties; subclasses override.
    properties: CodecProperties = CodecProperties(
        name="abstract", readable_output=False, random_access=False, shared_dictionary=False
    )

    #: Per-record framing bytes needed to keep records separable on disk.
    #: Newline-safe codecs (readable output, or binary that can never emit the
    #: newline byte) need 1; codecs whose output may contain any byte value
    #: need a length prefix (2 bytes covers screening-sized records).
    record_overhead: int = 1

    @abc.abstractmethod
    def fit(self, corpus: Sequence[str]) -> "BaselineCodec":
        """Train / configure the codec on *corpus* and return ``self``.

        Codecs that need no training (bzip2) simply return ``self``.
        """

    @abc.abstractmethod
    def compress_record(self, record: str) -> bytes:
        """Compress one record to bytes."""

    @abc.abstractmethod
    def decompress_record(self, payload: bytes) -> str:
        """Recover one record from its compressed bytes."""

    # ------------------------------------------------------------------ #
    # Corpus-level helpers shared by every implementation
    # ------------------------------------------------------------------ #
    def compress_corpus(self, corpus: Sequence[str]) -> List[bytes]:
        """Compress every record of *corpus* independently."""
        return [self.compress_record(record) for record in corpus]

    def compressed_size(
        self, corpus: Sequence[str], per_record_overhead: Optional[int] = None
    ) -> int:
        """Total compressed bytes for *corpus*, including per-record framing.

        *per_record_overhead* accounts for the record separator (newline) or
        length prefix needed to keep records separable; it defaults to the
        codec's :attr:`record_overhead`.
        """
        overhead = self.record_overhead if per_record_overhead is None else per_record_overhead
        return sum(len(payload) + overhead for payload in self.compress_corpus(corpus))

    def compression_ratio(
        self, corpus: Sequence[str], per_record_overhead: Optional[int] = None
    ) -> float:
        """Compressed size over original size for per-record compression."""
        original = sum(len(record) + 1 for record in corpus)
        if original == 0:
            return 1.0
        return self.compressed_size(corpus, per_record_overhead) / original

    def roundtrip_ok(self, corpus: Sequence[str]) -> bool:
        """Verify that every record decompresses to its original text."""
        return all(
            self.decompress_record(self.compress_record(record)) == record
            for record in corpus
        )
