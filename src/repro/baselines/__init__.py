"""Baseline compressors compared against ZSMILES (Section III / Figure 4)."""

from .bzip2_codec import Bzip2FileCodec, Bzip2LineCodec, bzip2_over_lines
from .fsst import FsstCodec, FsstSymbolTable, build_symbol_table
from .interface import BaselineCodec, CodecProperties
from .shoco import ShocoCodec, ShocoModel
from .transform import TransformBzip2Codec, forward_transform, inverse_transform
from .zsmiles_adapter import ZSmilesBaseline

__all__ = [
    "Bzip2FileCodec",
    "Bzip2LineCodec",
    "bzip2_over_lines",
    "FsstCodec",
    "FsstSymbolTable",
    "build_symbol_table",
    "BaselineCodec",
    "CodecProperties",
    "ShocoCodec",
    "ShocoModel",
    "TransformBzip2Codec",
    "forward_transform",
    "inverse_transform",
    "ZSmilesBaseline",
]
