"""Bzip2 baselines (Section III / Figure 4).

Two variants are compared in the paper:

* **file-based** — the whole ``.smi`` file is one bzip2 stream.  Best ratio,
  but stateful: extracting one molecule requires decompressing everything
  before it, and the output is binary.
* **line-based** — each record is bzip2-compressed on its own.  This restores
  separability but is very inefficient because bzip2's block model needs far
  more input than one SMILES to amortize its headers (the paper's argument
  for a domain-specific approach).

A third helper compresses the *output of ZSMILES* with file-based bzip2, the
"ZSMILES + Bzip2" bar of Figure 4.
"""

from __future__ import annotations

import bz2
from typing import Sequence

from .interface import BaselineCodec, CodecProperties


class Bzip2LineCodec(BaselineCodec):
    """Per-record bzip2 compression (keeps random access, wastes space)."""

    properties = CodecProperties(
        name="Bzip2 (per line)",
        readable_output=False,
        random_access=True,
        shared_dictionary=True,
    )

    #: bzip2 streams are arbitrary bytes, so separable storage needs a length prefix.
    record_overhead = 2

    def __init__(self, compresslevel: int = 9):
        if not 1 <= compresslevel <= 9:
            raise ValueError("bzip2 compresslevel must be in [1, 9]")
        self.compresslevel = compresslevel

    def fit(self, corpus: Sequence[str]) -> "Bzip2LineCodec":
        """No training needed; returns ``self``."""
        return self

    def compress_record(self, record: str) -> bytes:
        return bz2.compress(record.encode("latin-1"), self.compresslevel)

    def decompress_record(self, payload: bytes) -> str:
        return bz2.decompress(payload).decode("latin-1")


class Bzip2FileCodec(BaselineCodec):
    """Whole-file bzip2 compression (best ratio, no random access)."""

    properties = CodecProperties(
        name="Bzip2 (file)",
        readable_output=False,
        random_access=False,
        shared_dictionary=True,
    )

    def __init__(self, compresslevel: int = 9):
        if not 1 <= compresslevel <= 9:
            raise ValueError("bzip2 compresslevel must be in [1, 9]")
        self.compresslevel = compresslevel

    def fit(self, corpus: Sequence[str]) -> "Bzip2FileCodec":
        """No training needed; returns ``self``."""
        return self

    # Per-record methods exist for interface completeness; the meaningful
    # numbers come from the corpus-level overrides below.
    def compress_record(self, record: str) -> bytes:
        return bz2.compress(record.encode("latin-1"), self.compresslevel)

    def decompress_record(self, payload: bytes) -> str:
        return bz2.decompress(payload).decode("latin-1")

    # ------------------------------------------------------------------ #
    def compress_corpus_blob(self, corpus: Sequence[str]) -> bytes:
        """Compress the whole corpus (newline separated) as a single stream."""
        blob = "\n".join(corpus).encode("latin-1") + b"\n"
        return bz2.compress(blob, self.compresslevel)

    def decompress_corpus_blob(self, payload: bytes) -> list[str]:
        """Recover the full record list from a corpus blob."""
        text = bz2.decompress(payload).decode("latin-1")
        return text.splitlines()

    def compressed_size(self, corpus: Sequence[str], per_record_overhead: int = 0) -> int:
        """Size of the single compressed stream (no per-record framing exists)."""
        return len(self.compress_corpus_blob(corpus))

    def compression_ratio(self, corpus: Sequence[str], per_record_overhead: int = 0) -> float:
        original = sum(len(record) + 1 for record in corpus)
        if original == 0:
            return 1.0
        return self.compressed_size(corpus) / original


def bzip2_over_lines(lines: Sequence[str], compresslevel: int = 9) -> float:
    """Compression ratio of file-based bzip2 applied to arbitrary record lines.

    Used for the "ZSMILES + Bzip2" bar: pass the ZSMILES-compressed records
    and the returned ratio is relative to *those* records; multiply by the
    ZSMILES ratio to obtain the end-to-end figure.
    """
    original = sum(len(line) + 1 for line in lines)
    if original == 0:
        return 1.0
    blob = "\n".join(lines).encode("latin-1") + b"\n"
    return len(bz2.compress(blob, compresslevel)) / original
