"""The process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Everything here is stdlib-only and dependency-free (no imports from the
rest of :mod:`repro`), so any tier — store, engine, clients, server, the
campaign driver — can instrument itself without import cycles.

Three instrument kinds, all label-aware:

* :class:`Counter` — monotonically increasing float (``inc``).
* :class:`Gauge` — settable float (``set`` / ``inc`` / ``dec``).
* :class:`Histogram` — fixed upper-bound buckets (Prometheus ``le``
  semantics: a value equal to an edge lands in that edge's bucket), plus
  running sum and count.

A metric family (one name) fans out into one child per label-value tuple;
children are cached so the steady-state cost of ``family.labels(v).inc()``
is two dict lookups and one lock acquire — comfortably under a
microsecond, cheap enough for per-block instrumentation (per-byte loops
should aggregate locally and report once per block).

The registry serializes to a plain-JSON :meth:`MetricsRegistry.snapshot`
(the wire format fleet workers exchange), merges snapshots across
processes (:func:`merge_snapshots`) and renders the Prometheus text
exposition format (:func:`render_prometheus`) for ``GET /metrics``.

The ``ZSMILES_TELEMETRY`` environment variable is the kill switch: any of
``off`` / ``0`` / ``false`` / ``no`` makes every instrument minted by the
process-global registry a no-op (instrument *objects* still exist, so
call sites never branch).  Responses served with telemetry off are
byte-identical to instrumented ones — the overhead gate in
``benchmarks/test_server_latency.py`` pins that.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Kill-switch environment variable (``off``/``0``/``false``/``no`` disable).
TELEMETRY_ENV_VAR = "ZSMILES_TELEMETRY"

_DISABLED_VALUES = ("off", "0", "false", "no")

#: Default latency buckets (seconds): sub-millisecond to multi-second.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)
#: Default size buckets (bytes): tiny envelope to megabyte stream chunks.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


def telemetry_enabled() -> bool:
    """Whether the ``ZSMILES_TELEMETRY`` kill switch leaves telemetry on."""
    return os.environ.get(TELEMETRY_ENV_VAR, "on").strip().lower() not in _DISABLED_VALUES


class Counter:
    """A monotonically increasing value (one label combination)."""

    __slots__ = ("_value", "_lock", "_enabled")

    def __init__(self, enabled: bool = True):
        self._value = 0.0
        self._lock = threading.Lock()
        self._enabled = enabled

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one label combination)."""

    __slots__ = ("_value", "_lock", "_enabled")

    def __init__(self, enabled: bool = True):
        self._value = 0.0
        self._lock = threading.Lock()
        self._enabled = enabled

    def set(self, value: float) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution (one label combination).

    Buckets follow Prometheus ``le`` semantics: bucket *i* counts
    observations ``v <= edges[i]`` not already counted by a smaller edge
    — so a value exactly equal to an edge lands in that edge's bucket,
    never the next one up.  Counts are stored per-bucket (non-cumulative)
    with one overflow slot; the exposition renders them cumulatively.
    """

    __slots__ = ("edges", "_counts", "_sum", "_count", "_lock", "_enabled")

    def __init__(self, buckets: Sequence[float], enabled: bool = True):
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"bucket edges must be strictly increasing, got {edges}")
        self.edges = edges
        self._counts = [0] * (len(edges) + 1)  # +1 = the +Inf overflow slot
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()
        self._enabled = enabled

    def observe(self, value: float) -> None:
        if not self._enabled:
            return
        # bisect_left: first edge >= value, i.e. value == edge stays in
        # that edge's bucket (the pinned boundary semantics).
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; the last slot is +Inf."""
        with self._lock:
            return list(self._counts)


class MetricFamily:
    """One metric name fanned out over label-value tuples."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children",
                 "_lock", "_enabled", "_default")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        enabled: bool,
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        self._enabled = enabled
        # The label-less child is pre-built so bare counters skip labels().
        self._default = self._make_child() if not label_names else None

    def _make_child(self):
        if self.kind == "counter":
            return Counter(self._enabled)
        if self.kind == "gauge":
            return Gauge(self._enabled)
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS, self._enabled)

    def labels(self, *values: object):
        """The child for one label-value combination (created on demand)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Label-less convenience: family.inc() / .observe() / .set() delegate
    # to the single default child.
    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"{self.name} is labelled {self.label_names}; use .labels(...)"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    @property
    def value(self) -> float:
        return self._require_default().value

    @property
    def count(self) -> int:
        return self._require_default().count

    @property
    def sum(self) -> float:
        return self._require_default().sum

    def bucket_counts(self) -> List[int]:
        return self._require_default().bucket_counts()

    def _series_items(self) -> List[Tuple[Tuple[str, ...], object]]:
        if self._default is not None:
            return [((), self._default)]
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A named collection of metric families with a JSON-able snapshot.

    Registration is idempotent: asking for an existing name returns the
    existing family (kind and labels must agree, mismatches raise).  When
    *enabled* is false — or the ``ZSMILES_TELEMETRY`` kill switch is set
    for the default argument — every minted instrument is a no-op.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = telemetry_enabled() if enabled is None else enabled
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------- #
    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help_text, tuple(labels), self.enabled,
                    tuple(float(b) for b in buckets) if buckets else None,
                )
                self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help_text, labels, buckets)

    def clear(self) -> None:
        """Drop every family (test isolation for the global registry)."""
        with self._lock:
            self._families = {}

    # -- export --------------------------------------------------------- #
    def snapshot(self) -> Dict[str, object]:
        """A plain-JSON view of every family: the fleet merge wire format."""
        with self._lock:
            families = sorted(self._families.items())
        metrics: List[Dict[str, object]] = []
        for name, family in families:
            series: List[Dict[str, object]] = []
            for values, child in family._series_items():
                if family.kind == "histogram":
                    with child._lock:  # type: ignore[union-attr]
                        entry = {
                            "values": list(values),
                            "counts": list(child._counts),
                            "sum": child._sum,
                            "count": child._count,
                        }
                else:
                    entry = {"values": list(values), "value": child.value}
                series.append(entry)
            item: Dict[str, object] = {
                "name": name,
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
            if family.kind == "histogram":
                item["buckets"] = list(family.buckets or DEFAULT_LATENCY_BUCKETS)
            metrics.append(item)
        return {"metrics": metrics}

    def render(self) -> str:
        """This registry's Prometheus text exposition."""
        return render_prometheus(self.snapshot())


# --------------------------------------------------------------------------- #
# Snapshot algebra (the fleet aggregation path)
# --------------------------------------------------------------------------- #
def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Sum several :meth:`MetricsRegistry.snapshot` payloads into one.

    Counter and gauge series with identical labels add; histogram series
    add bucket-wise (families whose bucket edges disagree keep the first
    definition and drop the stragglers — that cannot happen between fleet
    workers running the same code, and silently mixing incompatible edges
    would corrupt the distribution).
    """
    merged: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    for snapshot in snapshots:
        for item in snapshot.get("metrics", []):  # type: ignore[union-attr]
            name = item["name"]
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "name": name,
                    "kind": item["kind"],
                    "help": item.get("help", ""),
                    "labels": list(item.get("labels", [])),
                    "series": {
                        tuple(s["values"]): dict(s) for s in item.get("series", [])
                    },
                }
                if item["kind"] == "histogram":
                    merged[name]["buckets"] = list(item.get("buckets", []))
                order.append(name)
                continue
            if into["kind"] != item["kind"]:
                continue  # name collision across kinds: keep the first
            if item["kind"] == "histogram" and list(item.get("buckets", [])) != into["buckets"]:
                continue
            series: Dict[Tuple[str, ...], Dict[str, object]] = into["series"]  # type: ignore[assignment]
            for entry in item.get("series", []):
                key = tuple(entry["values"])
                existing = series.get(key)
                if existing is None:
                    series[key] = dict(entry)
                elif item["kind"] == "histogram":
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], entry["counts"])
                    ]
                    existing["sum"] = existing["sum"] + entry["sum"]
                    existing["count"] = existing["count"] + entry["count"]
                else:
                    existing["value"] = existing["value"] + entry["value"]
    metrics = []
    for name in sorted(order):
        item = merged[name]
        series = [item["series"][key] for key in sorted(item["series"])]  # type: ignore[index]
        out: Dict[str, object] = {
            "name": name,
            "kind": item["kind"],
            "help": item["help"],
            "labels": item["labels"],
            "series": series,
        }
        if item["kind"] == "histogram":
            out["buckets"] = item["buckets"]
        metrics.append(out)
    return {"metrics": metrics}


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_block(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render one snapshot as the Prometheus text exposition format."""
    lines: List[str] = []
    for item in snapshot.get("metrics", []):  # type: ignore[union-attr]
        name = item["name"]
        kind = item["kind"]
        label_names = item.get("labels", [])
        if item.get("help"):
            lines.append(f"# HELP {name} {item['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in item.get("series", []):
            values = entry["values"]
            if kind == "histogram":
                edges = item.get("buckets", [])
                cumulative = 0
                for edge, count in zip(edges, entry["counts"]):
                    cumulative += count
                    block = _label_block(
                        label_names, values, f'le="{_format_value(edge)}"'
                    )
                    lines.append(f"{name}_bucket{block} {cumulative}")
                cumulative += entry["counts"][len(edges)]
                block = _label_block(label_names, values, 'le="+Inf"')
                lines.append(f"{name}_bucket{block} {cumulative}")
                block = _label_block(label_names, values)
                lines.append(f"{name}_sum{block} {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{block} {entry['count']}")
            else:
                block = _label_block(label_names, values)
                lines.append(f"{name}{block} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def snapshot_to_json(snapshot: Dict[str, object]) -> bytes:
    """Deterministic JSON bytes of a snapshot (the fleet wire payload)."""
    return (json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


# --------------------------------------------------------------------------- #
# The process-global registry
# --------------------------------------------------------------------------- #
_global_registry: Optional[MetricsRegistry] = None
_global_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (created lazily; honours the kill switch)."""
    global _global_registry
    registry = _global_registry
    if registry is None:
        with _global_lock:
            if _global_registry is None:
                _global_registry = MetricsRegistry()
            registry = _global_registry
    return registry


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Swap the process-global registry (tests); ``None`` resets to lazy."""
    global _global_registry
    with _global_lock:
        _global_registry = registry


def counter(name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
    """Register (or fetch) a counter family on the global registry."""
    return get_registry().counter(name, help_text, labels)


def gauge(name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
    """Register (or fetch) a gauge family on the global registry."""
    return get_registry().gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str = "",
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> MetricFamily:
    """Register (or fetch) a histogram family on the global registry."""
    return get_registry().histogram(name, help_text, labels, buckets)


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "TELEMETRY_ENV_VAR",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "merge_snapshots",
    "render_prometheus",
    "set_registry",
    "snapshot_to_json",
    "telemetry_enabled",
]
