"""``repro.telemetry`` — observing the stack.

Stdlib-only observability for the whole serving stack: a process-wide
metrics registry with Prometheus exposition, ``contextvars``-propagated
trace spans, and structured JSON access logs.  Every tier is already
instrumented — the server (per-route counters and latency/size
histograms), the clients (requests, retries, rotations, stream
progress), the store (block decode latency, cache hits/misses/evictions,
mmap vs handle reads, quarantine events), the engine kernel (lines and
bytes moved, reference fallbacks), the campaign driver (generation
timings, operator accept/reject), and the fault layer (``faults_*``).

Metric naming conventions
=========================
* Every name starts with a tier prefix: ``zsmiles_server_*``,
  ``zsmiles_client_*``, ``zsmiles_store_*``, ``zsmiles_cache_*``,
  ``zsmiles_kernel_*``, ``zsmiles_campaign_*``, ``zsmiles_retry_*`` — and
  ``faults_*`` for the chaos layer (deliberately outside the ``zsmiles``
  namespace: injected faults are not product behaviour).
* Counters end in ``_total``; histograms name their unit
  (``_seconds``, ``_bytes``); gauges name the instant quantity.
* Labels are low-cardinality discriminators only (``route``, ``event``,
  ``io``, ``op``, ``outcome``) — never ids, paths or indices.

Adding an instrument
====================
Register at module scope or first use through the convenience helpers —
registration is idempotent, so every call site can carry the full
definition::

    from ..telemetry import metrics as tm

    _DECODES = tm.counter(
        "zsmiles_store_blocks_decoded_total",
        "Blocks decoded from shards",
    )
    _LATENCY = tm.histogram(
        "zsmiles_store_block_decode_seconds",
        "Wall time of one block load+decode",
    )
    ...
    _DECODES.inc()
    _LATENCY.observe(elapsed)

Aggregate hot loops locally and report once per block/batch; the per-call
cost (two dict lookups + one lock) is well under a microsecond, but a
per-byte loop should still not pay it per byte.

The ``ZSMILES_TELEMETRY`` environment variable (``off``/``0``/``false``)
disables every instrument minted by the process-global registry;
responses stay byte-identical either way (the overhead gate in
``benchmarks/test_server_latency.py`` pins this).

Scraping a live server
======================
Every :class:`~repro.server.app.CorpusServer` — and every fleet worker —
exposes the registry at ``GET /metrics`` in the Prometheus text format::

    $ zsmiles serve corpus.library --workers 4 &
    $ curl -s http://127.0.0.1:8765/metrics | grep zsmiles_server_request_seconds
    zsmiles_server_request_seconds_bucket{route="single",le="0.0005"} 412
    zsmiles_server_request_seconds_bucket{route="single",le="0.001"} 498
    ...
    zsmiles_server_request_seconds_count{route="single"} 512

A fleet scrape is already aggregated: whichever worker answers merges
every live sibling's snapshot first (``?scope=local`` opts out), so one
``curl`` sees the whole fleet in both SO_REUSEPORT and proxy modes; the
same holds for ``GET /stats``.  ``zsmiles stats URL --watch 2`` renders
the live counter diff from a terminal, and
``GET /stats?trace=recent`` returns the most recent finished spans from
the in-process ring buffer.  Request ids stamped by the clients
(``X-Request-Id``) come back in the access log (``--access-log PATH|-``)
and in every error envelope, so one failing request can be followed from
a client retry chain into the exact worker that refused it.
"""

from .logs import AccessLogger, open_access_log
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    TELEMETRY_ENV_VAR,
    counter,
    gauge,
    get_registry,
    histogram,
    merge_snapshots,
    render_prometheus,
    set_registry,
    snapshot_to_json,
    telemetry_enabled,
)
from .tracing import (
    HEADER_REQUEST_ID,
    HEADER_TRACE_ID,
    Span,
    SpanExporter,
    current_trace_id,
    get_exporter,
    new_trace_id,
    set_exporter,
    start_span,
    trace_context,
)

__all__ = [
    "AccessLogger",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "HEADER_REQUEST_ID",
    "HEADER_TRACE_ID",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "SpanExporter",
    "TELEMETRY_ENV_VAR",
    "counter",
    "current_trace_id",
    "gauge",
    "get_exporter",
    "get_registry",
    "histogram",
    "merge_snapshots",
    "new_trace_id",
    "open_access_log",
    "render_prometheus",
    "set_exporter",
    "set_registry",
    "snapshot_to_json",
    "start_span",
    "telemetry_enabled",
    "trace_context",
]
