"""Trace spans with ``contextvars`` propagation and a ring-buffer exporter.

A *trace id* names one logical operation end to end: the blocking and
async clients stamp it onto every request as ``X-Request-Id`` /
``X-Trace-Id`` headers, the server adopts it, logs it and echoes it in
error envelopes — so a failover chain that touches three replicas is one
trace across every access log involved.  Propagation is a
:mod:`contextvars` variable, which flows naturally through both threads
(via :func:`contextvars.copy_context`) and ``asyncio`` tasks.

A :class:`Span` is one timed section of a trace (monotonic clock).
:func:`start_span` is the context manager instrumented code uses::

    with start_span("campaign.generation", generation=3) as span:
        ...                      # span.trace_id is set, nested spans share it
    span.duration_ms             # filled on exit, error recorded on raise

Finished spans land in a bounded in-memory :class:`SpanExporter` ring —
enough for tests and the ``GET /stats?trace=recent`` peek, with zero
retention risk: old spans fall off the end.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Wire header carrying the caller-chosen request id.
HEADER_REQUEST_ID = "X-Request-Id"
#: Wire header carrying the trace id (equal to the request id when the
#: request *starts* the trace).
HEADER_TRACE_ID = "X-Trace-Id"

#: Finished spans kept by the default exporter.
DEFAULT_RING_CAPACITY = 256

_trace_id_var: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "zsmiles_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, no coordination needed)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace id of the calling context, if one is set."""
    return _trace_id_var.get()


@contextmanager
def trace_context(trace_id: Optional[str] = None) -> Iterator[str]:
    """Pin a trace id on the current context for the ``with`` body.

    Reuses the ambient id when *trace_id* is ``None`` and one is already
    set (nested contexts join the enclosing trace); mints a fresh id
    otherwise.  Yields the effective id.
    """
    effective = trace_id or current_trace_id() or new_trace_id()
    token = _trace_id_var.set(effective)
    try:
        yield effective
    finally:
        _trace_id_var.reset(token)


class Span:
    """One timed section of a trace (monotonic start/stop)."""

    __slots__ = ("name", "trace_id", "attrs", "error", "duration_ms", "_started")

    def __init__(self, name: str, trace_id: str, attrs: Dict[str, object]):
        self.name = name
        self.trace_id = trace_id
        self.attrs = attrs
        self.error: Optional[str] = None
        self.duration_ms: Optional[float] = None
        self._started = time.monotonic()

    def finish(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = round((time.monotonic() - self._started) * 1000.0, 3)

    def to_dict(self) -> Dict[str, object]:
        """The JSON shape ``/stats?trace=recent`` serves."""
        payload: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "duration_ms": self.duration_ms,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.error is not None:
            payload["error"] = self.error
        return payload


class SpanExporter:
    """A bounded ring of finished spans (oldest fall off the end)."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 1:
            raise ValueError("SpanExporter capacity must be >= 1")
        self.capacity = capacity
        self._ring: "deque[Span]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The newest spans, oldest first (bounded by *limit*)."""
        with self._lock:
            spans = list(self._ring)
        if limit is not None:
            spans = spans[-limit:]
        return [span.to_dict() for span in spans]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


_global_exporter: Optional[SpanExporter] = None
_global_exporter_lock = threading.Lock()


def get_exporter() -> SpanExporter:
    """The process-wide span ring (created lazily)."""
    global _global_exporter
    exporter = _global_exporter
    if exporter is None:
        with _global_exporter_lock:
            if _global_exporter is None:
                _global_exporter = SpanExporter()
            exporter = _global_exporter
    return exporter


def set_exporter(exporter: Optional[SpanExporter]) -> None:
    """Swap the process-wide span ring (tests); ``None`` resets to lazy."""
    global _global_exporter
    with _global_exporter_lock:
        _global_exporter = exporter


@contextmanager
def start_span(
    name: str,
    exporter: Optional[SpanExporter] = None,
    **attrs: object,
) -> Iterator[Span]:
    """Time one section as a :class:`Span`, exporting it on exit.

    Joins the ambient trace (or starts one) for the duration of the body,
    so nested spans and any requests issued inside share the trace id.
    An exception is recorded on the span and re-raised.
    """
    with trace_context() as trace_id:
        span = Span(name, trace_id, attrs)
        try:
            yield span
        except BaseException as exc:
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.finish()
            (exporter if exporter is not None else get_exporter()).export(span)


__all__ = [
    "DEFAULT_RING_CAPACITY",
    "HEADER_REQUEST_ID",
    "HEADER_TRACE_ID",
    "Span",
    "SpanExporter",
    "current_trace_id",
    "get_exporter",
    "new_trace_id",
    "set_exporter",
    "start_span",
    "trace_context",
]
