"""Structured JSON access logging for the serving tier.

One line per request, machine-parseable, written under a lock so
concurrent handlers never interleave::

    {"bytes":123,"duration_ms":0.41,"method":"GET","request_id":"ab12...",
     "route":"single","status":200,"ts":1754640000.123456,"worker":0}

Off by default — ``zsmiles serve --access-log PATH`` (or ``-`` for
stdout) turns it on.  The logger is *rate-safe* in the sense that a
request costs exactly one buffered ``write`` of one pre-serialized line,
and any I/O failure disables the logger instead of failing requests:
observability must never take the data path down.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Optional, TextIO, Union


class AccessLogger:
    """Append structured JSON request lines to a file or stdout.

    Parameters
    ----------
    target:
        A path to append to, ``"-"`` for stdout, or an open text stream
        (the logger never closes streams it did not open).
    worker_id:
        Stamped on every line as ``worker`` when not ``None`` — the field
        that tells fleet workers' interleaved logs apart.
    """

    def __init__(
        self,
        target: Union[str, Path, TextIO],
        worker_id: Optional[int] = None,
    ):
        self.worker_id = worker_id
        self._lock = threading.Lock()
        self._owns_handle = False
        self._broken = False
        if target == "-":
            self._handle: Optional[TextIO] = sys.stdout
        elif isinstance(target, (str, Path)):
            self._handle = open(target, "a", encoding="utf-8", buffering=1)
            self._owns_handle = True
        else:
            self._handle = target

    def log(self, **fields: object) -> None:
        """Write one access line; swallowed failures disable the logger."""
        if self._broken or self._handle is None:
            return
        record = dict(fields)
        record.setdefault("ts", round(time.time(), 6))
        if self.worker_id is not None:
            record.setdefault("worker", self.worker_id)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            with self._lock:
                self._handle.write(line + "\n")
        except (OSError, ValueError):
            self._broken = True  # a dead log target must not kill serving

    def close(self) -> None:
        """Close the handle if this logger opened it (idempotent)."""
        with self._lock:
            if self._owns_handle and self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None

    def __enter__(self) -> "AccessLogger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_access_log(
    spec: Optional[Union[str, Path]], worker_id: Optional[int] = None
) -> Optional[AccessLogger]:
    """``None`` stays ``None``; anything else becomes an :class:`AccessLogger`."""
    if spec is None:
        return None
    return AccessLogger(spec, worker_id=worker_id)


__all__ = ["AccessLogger", "open_access_log"]
