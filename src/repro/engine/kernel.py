"""Flat-array codec kernel: the engine's allocation-free batch hot loop.

The reference parse (:func:`repro.core.shortest_path.optimal_parse`) walks a
pointer-based :class:`~repro.dictionary.trie.TrieNode` graph and allocates one
``ParseStep`` dataclass per chosen edge — clean, but every layer of the system
(engine batches, ``.zss`` block packing, sharded serving) funnels through it,
so its per-character Python overhead multiplies.  This module compiles the
dictionary into a :class:`CodecAutomaton` — the trie flattened into contiguous
integer arrays — and runs the same shortest-path dynamic program over
preallocated integer scratch arrays, emitting straight into a reused
``bytearray``.  No ``TrieNode``, no ``ParseStep``, no per-position objects.

Parity contract
---------------
The kernel is **byte-identical** to the reference path, including the
deterministic tie-break pinned by the golden fixtures (see
:mod:`repro.core.shortest_path`): the escape edge is the initial incumbent,
candidate matches are examined in increasing pattern length, and a candidate
wins only with a *strictly* lower cost.  Statistics (match / escape counts)
and error messages also match the reference exactly.  ``tests/engine/
test_kernel.py`` and ``tests/test_golden_parity.py`` enforce this contract
against the pinned fixtures, every registered backend and a hypothesis
property suite.

Both texts sides of the codec live in Latin-1 (plain SMILES are ASCII;
compressed symbols stop at U+00FF — the paper's "extended ASCII"), which is
what makes flat 256-wide tables possible.  Inputs or tables that step outside
Latin-1 transparently fall back to the reference implementation line by line,
so the kernel never changes behaviour, only speed.

Selection
---------
:class:`BlockKernel` wraps one :class:`~repro.core.codec.ZSmilesCodec` and is
what the execution layers use: the ``"kernel"`` engine backend (the default
in-process path — ``EngineConfig(parser="reference")`` restores the oracle),
process-pool workers, and the ``.zss`` block decoder.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

from ..core.compressor import ParseStrategy
from ..core.shortest_path import ESCAPE_COST as _ESCAPE_COST
from ..core.shortest_path import MATCH_COST as _MATCH_COST
from ..dictionary.codec_table import CodecTable
from ..errors import CompressionError, DecompressionError, ReproError
from ..smiles.alphabet import ESCAPE_CHAR
from ..telemetry import metrics as _metrics

#: Transition-table width: one slot per Latin-1 code point.
ALPHABET_SIZE = 256

#: Byte value of the escape marker (a space).
ESCAPE_BYTE = ord(ESCAPE_CHAR)


def _kernel_instruments():
    """The kernel's per-block counters (idempotent registration; looked up
    per block — the hot loops aggregate locally and report once)."""
    registry = _metrics.get_registry()
    lines = registry.counter(
        "zsmiles_kernel_lines_total",
        "Lines moved through the block kernel, by operation",
        labels=("op",),
    )
    out_bytes = registry.counter(
        "zsmiles_kernel_bytes_total",
        "Output bytes produced by the block kernel, by operation",
        labels=("op",),
    )
    fallbacks = registry.counter(
        "zsmiles_kernel_reference_fallback_total",
        "Lines that fell back to the reference codec path, by operation",
        labels=("op",),
    )
    return lines, out_bytes, fallbacks


class KernelUnsupportedError(ReproError):
    """Raised when a codec table cannot be compiled into a flat automaton."""


class CodecAutomaton:
    """The dictionary trie compiled into contiguous integer arrays.

    The automaton has one state per trie node.  Three parallel flat arrays
    describe it:

    * ``transitions`` — ``num_states * 256`` ints; ``transitions[(s << 8) | b]``
      is the next state after reading byte ``b`` in state ``s`` (-1 = no edge),
    * ``accept_length`` — pattern length terminating at each state (0 = none),
    * ``accept_symbol`` — symbol byte emitted for that pattern (-1 = none).

    All compression work then happens over ``bytes`` / ``bytearray`` and
    preallocated integer lists: the DP cost table, the per-position best
    (length, symbol) choice, and the output buffer are built once and reused
    across every line of every block.  Because that scratch state is reused,
    the ``compress_line_*`` methods are not re-entrant — each backend /
    worker process owns its own automaton.  ``decompress_line`` is
    re-entrant (it serves concurrent block decodes).
    """

    __slots__ = (
        "table",
        "num_states",
        "max_pattern_length",
        "_transitions",
        "_accept_length",
        "_accept_symbol",
        "_patterns_by_byte",
        "_cost",
        "_best_length",
        "_best_symbol",
        "_buffer",
    )

    def __init__(self, table: CodecTable):
        self.table = table
        transitions: List[int] = [-1] * ALPHABET_SIZE
        accept_length: List[int] = [0]
        accept_symbol: List[int] = [-1]
        patterns_by_byte: List[Optional[bytes]] = [None] * ALPHABET_SIZE
        num_states = 1
        for entry in table:
            try:
                pattern = entry.pattern.encode("latin-1")
                symbol = entry.symbol.encode("latin-1")
            except UnicodeEncodeError:
                raise KernelUnsupportedError(
                    f"entry {entry.symbol!r} -> {entry.pattern!r} is outside "
                    "Latin-1; the flat automaton cannot represent it"
                ) from None
            state = 0
            for byte in pattern:
                slot = (state << 8) | byte
                nxt = transitions[slot]
                if nxt < 0:
                    nxt = num_states
                    num_states += 1
                    transitions[slot] = nxt
                    transitions.extend([-1] * ALPHABET_SIZE)
                    accept_length.append(0)
                    accept_symbol.append(-1)
                state = nxt
            accept_length[state] = len(pattern)
            accept_symbol[state] = symbol[0]
            patterns_by_byte[symbol[0]] = pattern
        self.num_states = num_states
        self.max_pattern_length = table.max_pattern_length
        self._transitions = transitions
        self._accept_length = accept_length
        self._accept_symbol = accept_symbol
        self._patterns_by_byte = patterns_by_byte
        # Reusable scratch: DP tables sized to the longest line seen so far.
        self._cost: List[int] = []
        self._best_length: List[int] = []
        self._best_symbol: List[int] = []
        self._buffer = bytearray()

    @classmethod
    def try_from_table(cls, table: CodecTable) -> Optional["CodecAutomaton"]:
        """Compile *table*, or ``None`` when it cannot be represented."""
        try:
            return cls(table)
        except KernelUnsupportedError:
            return None

    # ------------------------------------------------------------------ #
    # Compression
    # ------------------------------------------------------------------ #
    def _reserve(self, n: int) -> None:
        """Grow the DP scratch arrays to hold a line of *n* characters."""
        if len(self._cost) <= n:
            grow = n + 1 - len(self._cost)
            self._cost.extend([0] * grow)
            self._best_length.extend([1] * grow)
            self._best_symbol.extend([-1] * grow)

    def compress_line_optimal(self, data: bytes) -> Tuple[str, int, int]:
        """Shortest-path compression of one Latin-1 line.

        Returns ``(compressed, matches, escapes)``; the parse replicates
        :func:`~repro.core.shortest_path.optimal_parse` exactly, tie-break
        included (strict improvement over the escape incumbent, matches
        visited in increasing length).
        """
        n = len(data)
        if n == 0:
            return "", 0, 0
        self._reserve(n)
        transitions = self._transitions
        accept_length = self._accept_length
        accept_symbol = self._accept_symbol
        cost = self._cost
        best_length = self._best_length
        best_symbol = self._best_symbol
        cost[n] = 0
        for i in range(n - 1, -1, -1):
            # Escape edge: always available, the incumbent at every position.
            best_cost = _ESCAPE_COST + cost[i + 1]
            chosen_length = 1
            chosen_symbol = -1
            state = 0
            j = i
            while j < n:
                state = transitions[(state << 8) | data[j]]
                if state < 0:
                    break
                j += 1
                length = accept_length[state]
                if length:
                    candidate = _MATCH_COST + cost[j]
                    if candidate < best_cost:
                        best_cost = candidate
                        chosen_length = length
                        chosen_symbol = accept_symbol[state]
            cost[i] = best_cost
            best_length[i] = chosen_length
            best_symbol[i] = chosen_symbol
        return self._emit(data, n, best_length, best_symbol)

    def compress_line_greedy(self, data: bytes) -> Tuple[str, int, int]:
        """Longest-match greedy compression of one Latin-1 line."""
        n = len(data)
        if n == 0:
            return "", 0, 0
        transitions = self._transitions
        accept_length = self._accept_length
        accept_symbol = self._accept_symbol
        buffer = self._buffer
        del buffer[:]
        matches = 0
        escapes = 0
        pos = 0
        while pos < n:
            state = 0
            j = pos
            longest_end = -1
            longest_symbol = -1
            while j < n:
                state = transitions[(state << 8) | data[j]]
                if state < 0:
                    break
                j += 1
                if accept_length[state]:
                    longest_end = j
                    longest_symbol = accept_symbol[state]
            if longest_end < 0:
                buffer.append(ESCAPE_BYTE)
                buffer.append(data[pos])
                escapes += 1
                pos += 1
            else:
                buffer.append(longest_symbol)
                matches += 1
                pos = longest_end
        return buffer.decode("latin-1"), matches, escapes

    def _emit(
        self, data: bytes, n: int, best_length: List[int], best_symbol: List[int]
    ) -> Tuple[str, int, int]:
        """Walk the chosen edges forward, writing into the reused buffer."""
        buffer = self._buffer
        del buffer[:]
        matches = 0
        escapes = 0
        pos = 0
        while pos < n:
            symbol = best_symbol[pos]
            if symbol < 0:
                buffer.append(ESCAPE_BYTE)
                buffer.append(data[pos])
                escapes += 1
                pos += 1
            else:
                buffer.append(symbol)
                matches += 1
                pos += best_length[pos]
        return buffer.decode("latin-1"), matches, escapes

    # ------------------------------------------------------------------ #
    # Decompression
    # ------------------------------------------------------------------ #
    def decompress_line(self, data: bytes) -> str:
        """Decode one Latin-1 compressed record back to SMILES text.

        Unlike the compression scratch arrays this allocates a local buffer:
        decompression serves concurrent readers (the ``.zss`` block decode
        path is hammered from multiple threads), so it must stay re-entrant.
        """
        n = len(data)
        patterns = self._patterns_by_byte
        buffer = bytearray()
        i = 0
        while i < n:
            byte = data[i]
            if byte == ESCAPE_BYTE:
                i += 1
                if i >= n:
                    raise DecompressionError("dangling escape marker at end of record")
                buffer.append(data[i])
                i += 1
            else:
                pattern = patterns[byte]
                if pattern is None:
                    raise DecompressionError(
                        f"symbol {chr(byte)!r} (U+{byte:04X}) is not in the dictionary"
                    )
                buffer += pattern
                i += 1
        return buffer.decode("latin-1")


class BlockKernel:
    """Batch compression / decompression of one codec through the automaton.

    The kernel owns the fallbacks that keep it a pure optimisation:

    * a table outside Latin-1 means no automaton — every line runs through the
      reference compressor / decompressor;
    * a single line outside Latin-1 (only reachable through escape-heavy
      non-SMILES input) falls back for that line only.

    ``compress_block`` applies the codec's preprocessing pipeline, honours its
    parse strategy (optimal or greedy) and returns the aggregate match /
    escape counters the engine's statistics need.
    """

    __slots__ = ("codec", "automaton", "_greedy", "_compress_lock")

    def __init__(self, codec):
        self.codec = codec
        self.automaton = CodecAutomaton.try_from_table(codec.table)
        self._greedy = codec.compressor.strategy is ParseStrategy.GREEDY
        # The automaton's DP scratch is reused across lines, so concurrent
        # compress calls must serialize.  One acquire per block is noise next
        # to the work, and pure-Python compression holds the GIL anyway —
        # threads never gained compression parallelism here.  Decompression
        # takes no lock: its kernel path is re-entrant by construction.
        self._compress_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def compress_block(self, lines: Sequence[str]) -> Tuple[List[str], int, int]:
        """Compress *lines*; returns ``(records, matches, escapes)``.

        Thread-safe: the shared DP scratch is guarded, so a cached
        :class:`~repro.engine.backends.KernelBackend` (the engine's default
        in-process path) can be driven from several threads like the
        stateless reference backend could.
        """
        with self._compress_lock:
            return self._compress_block_locked(lines)

    def _compress_block_locked(self, lines: Sequence[str]) -> Tuple[List[str], int, int]:
        automaton = self.automaton
        codec = self.codec
        if automaton is None:
            return self._compress_reference(lines)
        preprocess = codec.pipeline
        compress_line = (
            automaton.compress_line_greedy
            if self._greedy
            else automaton.compress_line_optimal
        )
        out: List[str] = []
        append = out.append
        matches = 0
        escapes = 0
        fallback_lines = 0
        out_bytes = 0
        for raw in lines:
            line = preprocess(raw)
            if "\n" in line or "\r" in line:
                raise CompressionError("input record must not contain line terminators")
            try:
                data = line.encode("latin-1")
            except UnicodeEncodeError:
                record = codec.compressor.compress_record(line)
                append(record.compressed)
                matches += record.matches
                escapes += record.escapes
                fallback_lines += 1
                out_bytes += len(record.compressed)
                continue
            compressed, line_matches, line_escapes = compress_line(data)
            append(compressed)
            matches += line_matches
            escapes += line_escapes
            out_bytes += len(compressed)
        metric_lines, metric_bytes, metric_fallbacks = _kernel_instruments()
        metric_lines.labels("compress").inc(len(out))
        metric_bytes.labels("compress").inc(out_bytes)
        if fallback_lines:
            metric_fallbacks.labels("compress").inc(fallback_lines)
        return out, matches, escapes

    def decompress_block(self, lines: Sequence[str]) -> List[str]:
        """Decompress *lines* (one output per input, order preserved)."""
        automaton = self.automaton
        metric_lines, metric_bytes, metric_fallbacks = _kernel_instruments()
        if automaton is None:
            out = [self.codec.decompress(line) for line in lines]
            metric_lines.labels("decompress").inc(len(out))
            metric_bytes.labels("decompress").inc(sum(len(r) for r in out))
            metric_fallbacks.labels("decompress").inc(len(out))
            return out
        decompress_line = automaton.decompress_line
        reference = self.codec.decompressor.decompress_line
        out: List[str] = []
        append = out.append
        fallback_lines = 0
        out_bytes = 0
        for line in lines:
            if "\n" in line or "\r" in line:
                raise DecompressionError(
                    "compressed record must not contain line terminators"
                )
            try:
                data = line.encode("latin-1")
            except UnicodeEncodeError:
                # Escaped literals beyond U+00FF can only come from non-SMILES
                # input; the reference path decodes (or rejects) them exactly.
                decoded = reference(line)
                append(decoded)
                fallback_lines += 1
                out_bytes += len(decoded)
                continue
            decoded = decompress_line(data)
            append(decoded)
            out_bytes += len(decoded)
        metric_lines.labels("decompress").inc(len(out))
        metric_bytes.labels("decompress").inc(out_bytes)
        if fallback_lines:
            metric_fallbacks.labels("decompress").inc(fallback_lines)
        return out

    # ------------------------------------------------------------------ #
    def _compress_reference(self, lines: Sequence[str]) -> Tuple[List[str], int, int]:
        """Whole-block reference fallback (non-Latin-1 dictionary)."""
        out: List[str] = []
        matches = 0
        escapes = 0
        for line in lines:
            record = self.codec.compress_record(line)
            out.append(record.compressed)
            matches += record.matches
            escapes += record.escapes
        metric_lines, metric_bytes, metric_fallbacks = _kernel_instruments()
        metric_lines.labels("compress").inc(len(out))
        metric_bytes.labels("compress").inc(sum(len(r) for r in out))
        metric_fallbacks.labels("compress").inc(len(out))
        return out, matches, escapes


__all__ = [
    "ALPHABET_SIZE",
    "ESCAPE_BYTE",
    "BlockKernel",
    "CodecAutomaton",
    "KernelUnsupportedError",
]
