"""Adapters putting the Figure 4 baseline codecs behind the backend protocol.

The baseline compressors (:mod:`repro.baselines`) are record-oriented and
byte-valued; :class:`BaselineBackend` lifts any of them to the engine's batch
contract so the experiment drivers can iterate over ZSMILES backends and
baselines with one code path.  Compressed payloads are surfaced as Latin-1
strings — a lossless byte ↔ str embedding — so :class:`BatchResult` keeps a
single record type across every backend.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..baselines.interface import BaselineCodec
from ..core.codec import CodecStats
from .backends import BackendStats, BatchResult

#: Encoding used to embed baseline byte payloads into str records losslessly.
PAYLOAD_ENCODING = "latin-1"


class BaselineBackend:
    """One baseline codec behind the :class:`CompressionBackend` protocol.

    The wrapped codec must already be fitted (or need no fitting); use
    :meth:`fit` to train in place.  Byte counts in the returned stats include
    the codec's :attr:`~repro.baselines.interface.BaselineCodec.record_overhead`
    per record on the compressed side and one newline per record on the plain
    side, matching :meth:`BaselineCodec.compression_ratio`.
    """

    def __init__(self, codec: BaselineCodec):
        self.codec = codec
        self.name = f"baseline:{codec.properties.name}"
        self._stats = BackendStats()

    # ------------------------------------------------------------------ #
    @classmethod
    def fitted(cls, codec: BaselineCodec, corpus: Sequence[str]) -> "BaselineBackend":
        """Fit *codec* on *corpus* and wrap it."""
        return cls(codec.fit(corpus))

    def fit(self, corpus: Sequence[str]) -> "BaselineBackend":
        """Train the wrapped codec in place and return ``self``."""
        self.codec.fit(corpus)
        return self

    # ------------------------------------------------------------------ #
    def compress_batch(self, records: Sequence[str]) -> BatchResult:
        started = time.perf_counter()
        records = list(records)
        payloads = [self.codec.compress_record(record) for record in records]
        out = [payload.decode(PAYLOAD_ENCODING) for payload in payloads]
        stats = CodecStats(
            lines=len(records),
            original_bytes=sum(len(record) + 1 for record in records),
            compressed_bytes=self._compressed_size(records, payloads),
            matches=0,
            escapes=0,
        )
        result = BatchResult(
            records=out,
            stats=stats,
            wall_time=time.perf_counter() - started,
            backend=self.name,
        )
        self._stats.record(result)
        return result

    def decompress_batch(self, records: Sequence[str]) -> BatchResult:
        started = time.perf_counter()
        out: List[str] = [
            self.codec.decompress_record(record.encode(PAYLOAD_ENCODING))
            for record in records
        ]
        # The compressed side always uses per-record framing here: the inputs
        # are individual payloads, so corpus-blob accounting (which only some
        # codecs define, over the *plain* records) does not apply.  For those
        # codecs the authoritative ratio is the compress-side one.
        overhead = self.codec.record_overhead
        stats = CodecStats(
            lines=len(records),
            original_bytes=sum(len(record) + 1 for record in out),
            compressed_bytes=sum(len(record) + overhead for record in records),
            matches=0,
            escapes=0,
        )
        result = BatchResult(
            records=out,
            stats=stats,
            wall_time=time.perf_counter() - started,
            backend=self.name,
        )
        self._stats.record(result)
        return result

    def stats(self) -> BackendStats:
        return self._stats

    # ------------------------------------------------------------------ #
    def _compressed_size(self, records: Sequence[str], payloads: Sequence[bytes]) -> int:
        """Stored size of the batch, honouring codec-specific accounting.

        Record-oriented codecs store each payload plus its framing overhead;
        corpus-oriented codecs (file-based bzip2) override
        :meth:`BaselineCodec.compressed_size` and must be asked directly.
        """
        if type(self.codec).compressed_size is BaselineCodec.compressed_size:
            overhead = self.codec.record_overhead
            return sum(len(payload) + overhead for payload in payloads)
        return self.codec.compressed_size(records)

    def compression_ratio(self, corpus: Sequence[str]) -> float:
        """Corpus compression ratio through the batch path.

        Codecs with corpus-level accounting (an overridden
        :meth:`BaselineCodec.compressed_size`) are asked directly — running
        the batch path first would compress every record individually only to
        throw the payloads away and compress the corpus again as one blob.
        """
        if type(self.codec).compressed_size is BaselineCodec.compressed_size:
            return self.compress_batch(corpus).stats.ratio
        return self.codec.compression_ratio(corpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BaselineBackend({self.codec.properties.name!r})"
