"""Execution backends for batch compression / decompression.

A backend takes a batch of records and returns a :class:`BatchResult` with the
transformed records (order preserved, one output per input), the aggregate
:class:`~repro.core.codec.CodecStats` of the batch, and the wall time spent.
Three backends operate on a :class:`~repro.core.codec.ZSmilesCodec`:

* :class:`SerialBackend` — in-process loop over the per-line compressor /
  decompressor; the reference implementation every other backend must match
  byte for byte.
* :class:`KernelBackend` — in-process flat-array batch kernel
  (:class:`~repro.engine.kernel.BlockKernel`); byte-identical to the serial
  reference but several times faster, and the default single-process path
  (``EngineConfig.parser``).
* :class:`ProcessPoolBackend` — data parallelism across CPU cores (the
  pure-Python analogue of the paper's CUDA grid); chunks the batch, ships each
  chunk to a worker process that holds a copy of the codec, and reassembles
  results in order.  Workers run the block kernel too unless the engine is
  configured for the reference parser.

Baseline compressors are adapted to the same protocol in
:mod:`repro.engine.baselines`.  Backends register themselves by name so the
engine (and the CLI) can select one with a string.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..core.codec import CodecStats, ZSmilesCodec
from ..core.compressor import record_bytes
from ..errors import ParallelExecutionError
from .config import (
    EngineConfig,
    KERNEL_BACKEND,
    KERNEL_PARSER,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
)
from .kernel import BlockKernel


@dataclass
class BatchResult:
    """Outcome of one batch operation through a backend.

    Attributes
    ----------
    records:
        Transformed records, in input order (one output per input).
    stats:
        Aggregate corpus statistics.  For compression, ``original_bytes``
        measures the raw input and ``compressed_bytes`` the output; for
        decompression the roles are mirrored so :attr:`CodecStats.ratio`
        always reads "compressed over plain".  Both sides include one
        line-terminator byte per record, matching the paper's file-size
        accounting.
    wall_time:
        Seconds spent inside the backend.
    backend:
        Name of the backend that ran the batch.
    workers:
        Worker processes that participated (1 for in-process backends).
    chunks:
        Work items the batch was split into (1 for in-process backends).
    """

    records: List[str]
    stats: CodecStats
    wall_time: float
    backend: str
    workers: int = 1
    chunks: int = 1


@dataclass
class BackendStats:
    """Cumulative counters a backend accumulates across batches."""

    batches: int = 0
    records: int = 0
    wall_time: float = 0.0

    def record(self, result: BatchResult) -> None:
        self.batches += 1
        self.records += len(result.records)
        self.wall_time += result.wall_time


@runtime_checkable
class CompressionBackend(Protocol):
    """The batch contract every execution backend satisfies."""

    name: str

    def compress_batch(self, records: Sequence[str]) -> BatchResult:
        """Compress *records* (order preserved, one output per input)."""
        ...

    def decompress_batch(self, records: Sequence[str]) -> BatchResult:
        """Decompress *records* (order preserved, one output per input)."""
        ...

    def stats(self) -> BackendStats:
        """Cumulative counters since the backend was created."""
        ...


# --------------------------------------------------------------------------- #
# Worker-process plumbing (module level so the spawn context can pickle it).
# The codec is sent once per worker through the pool initializer instead of
# once per task: the trie is by far the largest object involved.  Each worker
# compiles its own flat-array kernel from the codec at init time (unless the
# engine asked for the reference parser), so chunk processing runs the same
# allocation-free hot loop as the in-process kernel backend.
# --------------------------------------------------------------------------- #
_WORKER_CODEC: Optional[ZSmilesCodec] = None
_WORKER_KERNEL: Optional[BlockKernel] = None


def _init_worker(codec: ZSmilesCodec, use_kernel: bool = True) -> None:
    global _WORKER_CODEC, _WORKER_KERNEL
    _WORKER_CODEC = codec
    _WORKER_KERNEL = BlockKernel(codec) if use_kernel else None


def _compress_chunk(chunk: List[str]) -> Tuple[List[str], int, int]:
    """Compress one chunk; returns (records, matches, escapes)."""
    assert _WORKER_CODEC is not None, "worker initialized without a codec"
    if _WORKER_KERNEL is not None:
        return _WORKER_KERNEL.compress_block(chunk)
    out: List[str] = []
    matches = 0
    escapes = 0
    for line in chunk:
        record = _WORKER_CODEC.compress_record(line)
        out.append(record.compressed)
        matches += record.matches
        escapes += record.escapes
    return out, matches, escapes


def _decompress_chunk(chunk: List[str]) -> Tuple[List[str], int, int]:
    """Decompress one chunk; returns (records, 0, 0)."""
    assert _WORKER_CODEC is not None, "worker initialized without a codec"
    if _WORKER_KERNEL is not None:
        return _WORKER_KERNEL.decompress_block(chunk), 0, 0
    return [_WORKER_CODEC.decompress(line) for line in chunk], 0, 0


def default_worker_count() -> int:
    """Worker processes used when none is specified (CPU count, at least 1)."""
    return max(1, os.cpu_count() or 1)


def _batch_stats(
    inputs: Sequence[str],
    outputs: Sequence[str],
    matches: int,
    escapes: int,
    compressing: bool,
) -> CodecStats:
    """Aggregate statistics with the plain side as ``original_bytes``."""
    input_bytes = sum(record_bytes(s) + 1 for s in inputs)
    output_bytes = sum(record_bytes(s) + 1 for s in outputs)
    return CodecStats(
        lines=len(inputs),
        original_bytes=input_bytes if compressing else output_bytes,
        compressed_bytes=output_bytes if compressing else input_bytes,
        matches=matches,
        escapes=escapes,
    )


class SerialBackend:
    """In-process reference backend over a :class:`ZSmilesCodec`."""

    name = SERIAL_BACKEND

    def __init__(self, codec: ZSmilesCodec, config: Optional[EngineConfig] = None):
        self.codec = codec
        self._stats = BackendStats()

    # ------------------------------------------------------------------ #
    def compress_batch(self, records: Sequence[str]) -> BatchResult:
        started = time.perf_counter()
        out: List[str] = []
        matches = 0
        escapes = 0
        for line in records:
            record = self.codec.compress_record(line)
            out.append(record.compressed)
            matches += record.matches
            escapes += record.escapes
        result = BatchResult(
            records=out,
            stats=_batch_stats(records, out, matches, escapes, compressing=True),
            wall_time=time.perf_counter() - started,
            backend=self.name,
        )
        self._stats.record(result)
        return result

    def decompress_batch(self, records: Sequence[str]) -> BatchResult:
        started = time.perf_counter()
        out = [self.codec.decompress(line) for line in records]
        result = BatchResult(
            records=out,
            stats=_batch_stats(records, out, 0, 0, compressing=False),
            wall_time=time.perf_counter() - started,
            backend=self.name,
        )
        self._stats.record(result)
        return result

    def stats(self) -> BackendStats:
        return self._stats


class KernelBackend:
    """In-process flat-array kernel backend (the default hot path).

    Runs the :class:`~repro.engine.kernel.BlockKernel` batch loop: the
    dictionary compiled once into a :class:`~repro.engine.kernel.CodecAutomaton`,
    then every line of every batch parsed over preallocated integer arrays.
    Byte-identical to :class:`SerialBackend` — including statistics and error
    messages — just faster; the parity is pinned by the golden fixtures and
    the kernel test suite.
    """

    name = KERNEL_BACKEND

    def __init__(self, codec: ZSmilesCodec, config: Optional[EngineConfig] = None):
        self.codec = codec
        self.kernel = BlockKernel(codec)
        self._stats = BackendStats()

    # ------------------------------------------------------------------ #
    def compress_batch(self, records: Sequence[str]) -> BatchResult:
        started = time.perf_counter()
        out, matches, escapes = self.kernel.compress_block(records)
        result = BatchResult(
            records=out,
            stats=_batch_stats(records, out, matches, escapes, compressing=True),
            wall_time=time.perf_counter() - started,
            backend=self.name,
        )
        self._stats.record(result)
        return result

    def decompress_batch(self, records: Sequence[str]) -> BatchResult:
        started = time.perf_counter()
        out = self.kernel.decompress_block(records)
        result = BatchResult(
            records=out,
            stats=_batch_stats(records, out, 0, 0, compressing=False),
            wall_time=time.perf_counter() - started,
            backend=self.name,
        )
        self._stats.record(result)
        return result

    def stats(self) -> BackendStats:
        return self._stats


class ProcessPoolBackend:
    """Spawn-based process-pool backend over a :class:`ZSmilesCodec`.

    Outputs are byte-identical to :class:`SerialBackend`: the batch is split
    into ``chunk_size``-record chunks, each chunk is processed by a worker
    holding a pickled copy of the codec, and the chunk results are
    concatenated in submission order.
    """

    name = PROCESS_BACKEND

    def __init__(self, codec: ZSmilesCodec, config: Optional[EngineConfig] = None):
        # jobs / chunk_size sanity is EngineConfig.__post_init__'s job.
        config = config or EngineConfig()
        self.codec = codec
        self.workers = config.jobs or default_worker_count()
        self.chunk_size = config.chunk_size
        self.use_kernel = config.parser == KERNEL_PARSER
        self._stats = BackendStats()
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def compress_batch(self, records: Sequence[str]) -> BatchResult:
        return self._run(records, _compress_chunk, compressing=True)

    def decompress_batch(self, records: Sequence[str]) -> BatchResult:
        return self._run(records, _decompress_chunk, compressing=False)

    def stats(self) -> BackendStats:
        return self._stats

    # ------------------------------------------------------------------ #
    # Pool lifecycle: workers are spawned lazily on the first batch and kept
    # alive across batches, so streaming a large file batch-by-batch pays the
    # spawn + codec-pickling cost exactly once.
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_init_worker,
                initargs=(self.codec, self.use_kernel),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a new batch respawns it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def _run(
        self,
        records: Sequence[str],
        chunk_fn: Callable[[List[str]], Tuple[List[str], int, int]],
        compressing: bool,
    ) -> BatchResult:
        started = time.perf_counter()
        records = list(records)
        chunks = [
            records[start : start + self.chunk_size]
            for start in range(0, len(records), self.chunk_size)
        ]
        out: List[str] = []
        matches = 0
        escapes = 0
        if not chunks:
            chunk_results: List[Tuple[List[str], int, int]] = []
        else:
            try:
                chunk_results = list(self._ensure_pool().map(chunk_fn, chunks))
            except ParallelExecutionError:
                raise
            except Exception as exc:
                if isinstance(exc, BrokenPipeError) or self._pool is None or getattr(
                    self._pool, "_broken", False
                ):
                    # A dead pool cannot serve further batches; drop it so the
                    # next call starts fresh.
                    self._pool = None
                raise ParallelExecutionError(f"parallel batch failed: {exc}") from exc
        for chunk_records, chunk_matches, chunk_escapes in chunk_results:
            out.extend(chunk_records)
            matches += chunk_matches
            escapes += chunk_escapes
        result = BatchResult(
            records=out,
            stats=_batch_stats(records, out, matches, escapes, compressing=compressing),
            wall_time=time.perf_counter() - started,
            backend=self.name,
            workers=min(self.workers, len(chunks)) if chunks else 1,
            chunks=max(1, len(chunks)),
        )
        self._stats.record(result)
        return result


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
BackendFactory = Callable[[ZSmilesCodec, Optional[EngineConfig]], CompressionBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, overwrite: bool = False) -> None:
    """Register a backend *factory* under *name* for engine / CLI selection."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def backend_factory(name: str) -> BackendFactory:
    """The factory registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def create_backend(
    name: str, codec: ZSmilesCodec, config: Optional[EngineConfig] = None
) -> CompressionBackend:
    """Instantiate the backend registered under *name* for *codec*."""
    return backend_factory(name)(codec, config)


def available_backends() -> List[str]:
    """Names of every registered backend."""
    return sorted(_REGISTRY)


register_backend(SERIAL_BACKEND, SerialBackend)
register_backend(KERNEL_BACKEND, KernelBackend)
register_backend(PROCESS_BACKEND, ProcessPoolBackend)
