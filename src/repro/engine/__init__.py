"""Unified, backend-pluggable compression engine (the batch-first surface).

Everything the package can do to a batch of SMILES — serial in-process
compression, process-pool data parallelism, baseline codecs — lives behind
one protocol (:class:`CompressionBackend`), one facade (:class:`ZSmilesEngine`)
and one configuration object (:class:`EngineConfig`).
"""

from .backends import (
    BackendStats,
    BatchResult,
    CompressionBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    backend_factory,
    create_backend,
    default_worker_count,
    register_backend,
)
from .baselines import BaselineBackend
from .config import (
    AUTO_BACKEND,
    BACKEND_CHOICES,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    EngineConfig,
    EngineConfigError,
)
from .engine import ZSmilesEngine

__all__ = [
    "AUTO_BACKEND",
    "BACKEND_CHOICES",
    "PROCESS_BACKEND",
    "SERIAL_BACKEND",
    "BackendStats",
    "BatchResult",
    "BaselineBackend",
    "CompressionBackend",
    "EngineConfig",
    "EngineConfigError",
    "ProcessPoolBackend",
    "SerialBackend",
    "ZSmilesEngine",
    "available_backends",
    "backend_factory",
    "create_backend",
    "default_worker_count",
    "register_backend",
]
