"""Unified, backend-pluggable compression engine (the batch-first surface).

Everything the package can do to a batch of SMILES — serial in-process
compression, the flat-array batch kernel, process-pool data parallelism,
baseline codecs — lives behind one protocol (:class:`CompressionBackend`),
one facade (:class:`ZSmilesEngine`) and one configuration object
(:class:`EngineConfig`).

Kernel vs reference
-------------------
The engine has two in-process parse implementations with one invariant:
**byte-identical output**.

* The **kernel** (:mod:`repro.engine.kernel`, backend name ``"kernel"``) is
  the default single-process hot path: the dictionary trie compiled once into
  flat integer transition arrays (:class:`~repro.engine.kernel.CodecAutomaton`),
  the shortest-path DP run over preallocated scratch, output emitted into a
  reused ``bytearray``.  Process-pool workers and the ``.zss`` block decoder
  run the same kernel.
* The **reference** (backend name ``"serial"``) is the seed's per-line
  trie walk (:func:`~repro.core.shortest_path.optimal_parse`); it stays the
  readable oracle that defines correct bytes — including the deterministic
  tie-break the golden fixtures pin (see :mod:`repro.core.shortest_path`).

Select the oracle with ``EngineConfig(parser="reference")`` (routes ``auto``
batches and pool workers through it) or per call with
``compress_batch(..., backend="serial")``.  Parity is enforced by
``tests/engine/test_kernel.py``, the golden fixtures and a hypothesis suite;
``benchmarks/test_throughput.py`` records the speedup in ``BENCH_codec.json``.
"""

from .backends import (
    BackendStats,
    BatchResult,
    CompressionBackend,
    KernelBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    backend_factory,
    create_backend,
    default_worker_count,
    register_backend,
)
from .baselines import BaselineBackend
from .config import (
    AUTO_BACKEND,
    BACKEND_CHOICES,
    KERNEL_BACKEND,
    PARSER_CHOICES,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    EngineConfig,
    EngineConfigError,
)
from .engine import ZSmilesEngine
from .kernel import BlockKernel, CodecAutomaton, KernelUnsupportedError

__all__ = [
    "AUTO_BACKEND",
    "BACKEND_CHOICES",
    "KERNEL_BACKEND",
    "PARSER_CHOICES",
    "PROCESS_BACKEND",
    "SERIAL_BACKEND",
    "BackendStats",
    "BatchResult",
    "BaselineBackend",
    "BlockKernel",
    "CodecAutomaton",
    "CompressionBackend",
    "EngineConfig",
    "EngineConfigError",
    "KernelBackend",
    "KernelUnsupportedError",
    "ProcessPoolBackend",
    "SerialBackend",
    "ZSmilesEngine",
    "available_backends",
    "backend_factory",
    "create_backend",
    "default_worker_count",
    "register_backend",
]
