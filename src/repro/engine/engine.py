"""The :class:`ZSmilesEngine` facade — one batch-first compression surface.

The engine unifies what used to be four disjoint entry points:

* :class:`~repro.core.codec.ZSmilesCodec` (per-line calls),
* :func:`~repro.core.streaming.compress_file` / ``decompress_file`` (files),
* :class:`~repro.parallel.executor.ParallelCodec` (process-pool batches),
* the baseline codecs (through :class:`~repro.engine.baselines.BaselineBackend`).

One :class:`~repro.engine.config.EngineConfig` describes dictionary training,
preprocessing, parsing and backend selection; every batch operation returns a
:class:`~repro.engine.backends.BatchResult` with the transformed records, the
aggregate :class:`~repro.core.codec.CodecStats` and the wall time.  With
``backend="auto"`` (the default) small batches run in-process through the
flat-array kernel (:mod:`repro.engine.kernel`) and large ones on the process
pool (whose workers run the same kernel), so callers never hand-roll the
dispatch decision.  ``EngineConfig(parser="reference")`` or
``backend="serial"`` select the per-line reference oracle instead — byte
parity between the two is the engine's core invariant (see
:mod:`repro.engine` for the full kernel-vs-reference contract).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..core.codec import CodecStats, ZSmilesCodec
from ..dictionary.codec_table import CodecTable
from ..dictionary.generator import DictionaryGenerator, TrainingReport
from ..dictionary import serialization
from ..errors import CodecError
from .backends import BatchResult, CompressionBackend, create_backend
from .config import AUTO_BACKEND, EngineConfig

PathLike = Union[str, Path]


class ZSmilesEngine:
    """Batch-first compression engine with pluggable execution backends."""

    def __init__(
        self,
        table: CodecTable,
        config: Optional[EngineConfig] = None,
        codec: Optional[ZSmilesCodec] = None,
    ):
        self.config = config or EngineConfig()
        if codec is None:
            codec = ZSmilesCodec(
                table,
                pipeline=self.config.build_pipeline(),
                strategy=self.config.strategy,
            )
        self.codec = codec
        self.table = codec.table
        self.training_report: Optional[TrainingReport] = codec.training_report
        self._backends: Dict[str, CompressionBackend] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def train(
        cls,
        corpus: Iterable[str],
        config: Optional[EngineConfig] = None,
        **overrides: object,
    ) -> "ZSmilesEngine":
        """Train a dictionary on *corpus* and return an engine around it.

        *overrides* are :class:`EngineConfig` field values applied on top of
        *config* (or the default configuration), e.g.
        ``ZSmilesEngine.train(corpus, lmax=8, backend="process")``.
        """
        config = (config or EngineConfig()).replace(**overrides)
        pipeline = config.build_pipeline()
        prepared = pipeline.apply_list(list(corpus))
        generator = DictionaryGenerator(config.dictionary_config())
        table = generator.train(prepared)
        codec = ZSmilesCodec(table, pipeline=pipeline, strategy=config.strategy)
        codec.training_report = generator.report
        engine = cls(table, config=config, codec=codec)
        engine.training_report = generator.report
        return engine

    @classmethod
    def from_dictionary(
        cls,
        path: PathLike,
        config: Optional[EngineConfig] = None,
        **overrides: object,
    ) -> "ZSmilesEngine":
        """Load a previously saved ``.dct`` dictionary into an engine."""
        config = (config or EngineConfig()).replace(**overrides)
        table = serialization.load(path)
        return cls(table, config=config)

    @classmethod
    def from_codec(
        cls,
        codec: ZSmilesCodec,
        config: Optional[EngineConfig] = None,
        **overrides: object,
    ) -> "ZSmilesEngine":
        """Wrap an existing codec (its pipeline and strategy win over *config*).

        The returned engine's configuration is synced to the codec — parse
        strategy, pre-population, and the preprocessing switch / ring policy
        inferred from the codec's pipeline steps — so ``config.replace()``
        derivatives describe what the engine actually does.
        """
        config = (config or EngineConfig()).replace(**overrides)
        preprocessing = False
        ring_policy = config.ring_policy
        for name in codec.pipeline.names:
            if name.startswith("ring_renumber[") and name.endswith("]"):
                preprocessing = True
                ring_policy = name[len("ring_renumber[") : -1]
        config = config.replace(
            strategy=codec.compressor.strategy,
            preprocessing=preprocessing,
            ring_policy=ring_policy,
            prepopulation=codec.table.prepopulation,
        )
        return cls(codec.table, config=config, codec=codec)

    # ------------------------------------------------------------------ #
    # Backend management
    # ------------------------------------------------------------------ #
    def backend(self, name: Optional[str] = None, batch_size: int = 0) -> CompressionBackend:
        """The (cached) backend instance for *name*.

        ``None`` or ``"auto"`` resolves through the configuration's batch-size
        threshold; concrete names come from the backend registry.
        """
        resolved = name or self.config.backend
        if resolved == AUTO_BACKEND:
            resolved = self.config.resolved_backend(batch_size)
        if resolved not in self._backends:
            self._backends[resolved] = create_backend(resolved, self.codec, self.config)
        return self._backends[resolved]

    def close(self) -> None:
        """Release backend resources (worker pools).  The engine stays usable."""
        for backend in self._backends.values():
            closer = getattr(backend, "close", None)
            if closer is not None:
                closer()
        self._backends.clear()

    def __enter__(self) -> "ZSmilesEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Batch operations (the primary surface)
    # ------------------------------------------------------------------ #
    def compress_batch(
        self, records: Sequence[str], backend: Optional[str] = None
    ) -> BatchResult:
        """Preprocess and compress *records* (order preserved).

        The result's ``stats.original_bytes`` measures the raw input (before
        preprocessing), matching :meth:`ZSmilesCodec.evaluate`.
        """
        records = list(records)
        return self.backend(backend, len(records)).compress_batch(records)

    def decompress_batch(
        self, records: Sequence[str], backend: Optional[str] = None
    ) -> BatchResult:
        """Decompress *records* back to (preprocessed) SMILES (order preserved)."""
        records = list(records)
        return self.backend(backend, len(records)).decompress_batch(records)

    def evaluate(self, corpus: Sequence[str], backend: Optional[str] = None) -> CodecStats:
        """Compress *corpus* and return the aggregate statistics.

        Byte counts match :meth:`ZSmilesCodec.evaluate`: one newline byte per
        record on both sides, original side measured on the raw input.
        """
        return self.compress_batch(corpus, backend=backend).stats

    def compression_ratio(self, corpus: Sequence[str], backend: Optional[str] = None) -> float:
        """Corpus compression ratio (compressed bytes / original bytes)."""
        return self.evaluate(corpus, backend=backend).ratio

    # ------------------------------------------------------------------ #
    # Single-record conveniences (delegate to the serial hot path)
    # ------------------------------------------------------------------ #
    def preprocess(self, smiles: str) -> str:
        """Apply the engine's preprocessing pipeline to one SMILES string."""
        return self.codec.preprocess(smiles)

    def compress(self, smiles: str) -> str:
        """Preprocess and compress one SMILES string."""
        return self.codec.compress(smiles)

    def decompress(self, compressed: str) -> str:
        """Decompress one record back to (preprocessed) SMILES text."""
        return self.codec.decompress(compressed)

    # ------------------------------------------------------------------ #
    # File operations (streaming, batch-at-a-time)
    # ------------------------------------------------------------------ #
    def compress_file(
        self,
        input_path: PathLike,
        output_path: Optional[PathLike] = None,
        progress: Optional[object] = None,
        batch_size: int = 8192,
        backend: Optional[str] = None,
    ):
        """Compress a ``.smi`` file into a ``.zsmi`` file, one record per line.

        Returns the same :class:`~repro.core.streaming.FileStats` as the
        legacy :func:`~repro.core.streaming.compress_file`, with byte-identical
        output; records stream through the engine *batch_size* at a time, so
        arbitrarily large libraries never need to fit in memory and the
        process-pool backend can be exploited per batch.
        """
        from ..core.streaming import ZSMI_SUFFIX

        input_path = Path(input_path)
        if output_path is None:
            output_path = input_path.with_suffix(ZSMI_SUFFIX)
        return self._transform_file(
            input_path, output_path, compressing=True, progress=progress,
            batch_size=batch_size, backend=backend,
        )

    def decompress_file(
        self,
        input_path: PathLike,
        output_path: Optional[PathLike] = None,
        progress: Optional[object] = None,
        batch_size: int = 8192,
        backend: Optional[str] = None,
    ):
        """Decompress a ``.zsmi`` file back into a ``.smi`` file."""
        from ..core.streaming import SMI_SUFFIX

        input_path = Path(input_path)
        if output_path is None:
            output_path = input_path.with_suffix(SMI_SUFFIX)
        return self._transform_file(
            input_path, output_path, compressing=False, progress=progress,
            batch_size=batch_size, backend=backend,
        )

    def _transform_file(
        self,
        input_path: Path,
        output_path: PathLike,
        compressing: bool,
        progress: Optional[object],
        batch_size: int,
        backend: Optional[str],
    ):
        from ..core.streaming import FILE_ENCODING, FileStats

        if batch_size < 1:
            raise CodecError("batch_size must be >= 1")
        output_path = Path(output_path)
        lines = 0
        input_bytes = 0
        output_bytes = 0
        with open(input_path, "r", encoding=FILE_ENCODING, newline="") as src, open(
            output_path, "w", encoding=FILE_ENCODING, newline="\n"
        ) as dst:
            for batch in _batched_lines(src, batch_size):
                if compressing:
                    result = self.compress_batch(batch, backend=backend)
                else:
                    result = self.decompress_batch(batch, backend=backend)
                for record, out in zip(batch, result.records):
                    if "\n" in out or "\r" in out:
                        raise CodecError(
                            "transform produced a record containing a line terminator"
                        )
                    dst.write(out)
                    dst.write("\n")
                    lines += 1
                    input_bytes += len(record.encode(FILE_ENCODING)) + 1
                    output_bytes += len(out.encode(FILE_ENCODING)) + 1
                    if progress is not None and lines % 100_000 == 0:
                        progress(lines)
        return FileStats(
            input_path=input_path,
            output_path=output_path,
            lines=lines,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_dictionary(self, path: PathLike) -> None:
        """Write the engine's dictionary to a ``.dct`` file."""
        serialization.save(self.table, path)

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZSmilesEngine(entries={len(self.table)}, "
            f"backend={self.config.backend!r}, "
            f"strategy={self.config.strategy.value})"
        )


def _batched_lines(handle: Iterable[str], batch_size: int) -> Iterator[List[str]]:
    """Yield terminator-stripped line batches of at most *batch_size* records."""
    batch: List[str] = []
    for raw in handle:
        batch.append(raw.rstrip("\r\n"))
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
