"""Consolidated engine configuration.

Before the engine existed, the knobs of the compression surface were scattered
over four call sites: :meth:`ZSmilesCodec.train` keyword arguments (dictionary
parameters), :func:`make_pipeline` (preprocessing), :class:`Compressor`
(parse strategy) and :class:`ParallelCodec` (worker pool shape).
:class:`EngineConfig` collects all of them in one immutable dataclass so that
one object fully describes how a :class:`~repro.engine.engine.ZSmilesEngine`
trains, preprocesses, parses and executes batches.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..core.compressor import ParseStrategy
from ..dictionary.generator import DictionaryConfig
from ..dictionary.prepopulation import PrePopulation
from ..errors import ReproError
from ..preprocess.pipeline import PreprocessingPipeline, make_pipeline
from ..preprocess.ring_renumber import RingRenumberPolicy

#: Backend name that defers the kernel / process choice to the batch size.
AUTO_BACKEND = "auto"
#: Name of the in-process reference backend (the per-line oracle).
SERIAL_BACKEND = "serial"
#: Name of the in-process flat-array kernel backend (the default hot path).
KERNEL_BACKEND = "kernel"
#: Name of the process-pool backend.
PROCESS_BACKEND = "process"

#: Parser implementations selectable through :attr:`EngineConfig.parser`.
KERNEL_PARSER = "kernel"
REFERENCE_PARSER = "reference"
PARSER_CHOICES: Tuple[str, ...] = (KERNEL_PARSER, REFERENCE_PARSER)


class EngineConfigError(ReproError):
    """Raised when an :class:`EngineConfig` is inconsistent."""


@dataclass(frozen=True)
class EngineConfig:
    """Every knob of the compression engine in one place.

    Attributes
    ----------
    lmin, lmax, max_entries, min_occurrences, rank_mode:
        Algorithm 1 dictionary-training parameters (see
        :class:`~repro.dictionary.generator.DictionaryConfig`).
    prepopulation:
        Dictionary seeding policy (Table I "Pre-population").
    preprocessing:
        Apply ring-identifier renumbering before training and compression
        (Table I "Pre-processing").
    ring_policy:
        ``"innermost"`` (paper default) or ``"outermost"``.
    strategy:
        Optimal shortest-path parsing (paper) or greedy longest match.
    parser:
        In-process parse implementation: ``"kernel"`` (default — the
        flat-array batch automaton of :mod:`repro.engine.kernel`) or
        ``"reference"`` (the original per-line trie walk, kept as the
        byte-parity oracle).  Both produce identical bytes; the choice only
        affects speed and applies to the ``"auto"`` route and the
        process-pool workers.  Selecting ``backend="serial"`` or
        ``backend="kernel"`` explicitly overrides this knob.
    backend:
        Execution backend name: ``"serial"``, ``"kernel"``, ``"process"``
        or ``"auto"``.  ``"auto"`` runs batches of at least
        *parallel_threshold* records on the process pool and everything
        smaller in-process (through the configured *parser*).
    jobs:
        Worker processes for the process-pool backend (``None`` = CPU count).
    chunk_size:
        Records per work item shipped to one worker.
    parallel_threshold:
        Minimum batch size before ``"auto"`` picks the process pool.
    """

    # Dictionary training (Algorithm 1).
    lmin: int = 2
    lmax: int = 8
    max_entries: Optional[int] = None
    min_occurrences: int = 2
    rank_mode: str = "savings"
    prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET

    # Preprocessing (Section IV-A).
    preprocessing: bool = True
    ring_policy: RingRenumberPolicy = "innermost"

    # Parsing (Section IV-D1).
    strategy: ParseStrategy = ParseStrategy.OPTIMAL
    parser: str = KERNEL_PARSER

    # Execution backend.
    backend: str = AUTO_BACKEND
    jobs: Optional[int] = None
    chunk_size: int = 2048
    parallel_threshold: int = 4096

    def __post_init__(self) -> None:
        if isinstance(self.strategy, str):
            object.__setattr__(self, "strategy", ParseStrategy.from_name(self.strategy))
        if isinstance(self.prepopulation, str):
            object.__setattr__(
                self, "prepopulation", PrePopulation.from_name(self.prepopulation)
            )
        if self.parser not in PARSER_CHOICES:
            raise EngineConfigError(
                f"parser must be one of {PARSER_CHOICES}, got {self.parser!r}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise EngineConfigError("jobs must be >= 1")
        if self.chunk_size < 1:
            raise EngineConfigError("chunk_size must be >= 1")
        if self.parallel_threshold < 0:
            raise EngineConfigError("parallel_threshold must be >= 0")

    # ------------------------------------------------------------------ #
    def dictionary_config(self) -> DictionaryConfig:
        """The training slice of this configuration."""
        return DictionaryConfig(
            lmin=self.lmin,
            lmax=self.lmax,
            max_entries=self.max_entries,
            prepopulation=self.prepopulation,
            min_occurrences=self.min_occurrences,
            rank_mode=self.rank_mode,
        )

    def build_pipeline(self) -> PreprocessingPipeline:
        """The preprocessing pipeline this configuration describes."""
        return make_pipeline(self.preprocessing, ring_policy=self.ring_policy)

    def replace(self, **changes: object) -> "EngineConfig":
        """A copy of this configuration with *changes* applied."""
        return dataclasses.replace(self, **changes)

    def resolved_backend(self, batch_size: int) -> str:
        """Concrete backend name for a batch of *batch_size* records.

        ``"auto"`` picks the process pool for large batches (at least
        *parallel_threshold* records) unless the pool is configured down to a
        single worker, in which case spawning processes can never pay off.
        Small batches run in-process through the configured *parser*: the
        flat-array kernel by default, the reference oracle on request.
        """
        if self.backend != AUTO_BACKEND:
            return self.backend
        if self.jobs == 1 or batch_size < self.parallel_threshold:
            return KERNEL_BACKEND if self.parser == KERNEL_PARSER else SERIAL_BACKEND
        return PROCESS_BACKEND


#: Names accepted by the CLI and the engine for backend selection.
BACKEND_CHOICES: Tuple[str, ...] = (
    SERIAL_BACKEND,
    KERNEL_BACKEND,
    PROCESS_BACKEND,
    AUTO_BACKEND,
)

ConfigLike = Union[EngineConfig, None]
