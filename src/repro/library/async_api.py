"""Async serving surface: :class:`AsyncCorpusLibrary`.

Block decode and file I/O are blocking, so the async surface runs them on
worker threads (``asyncio.to_thread``) over a *bounded pool* of independent
:class:`~repro.library.facade.CorpusLibrary` readers.  Each pooled reader
owns its file handles, so concurrent requests never contend on a shared
seek position; the pool size bounds both thread fan-out and open file
handles.  Results are byte-identical to the sync path — the parity tests
pin ``await lib.get(i) == store.get(i)`` for every record.

Typical use inside a request-serving loop::

    async with AsyncCorpusLibrary.open("corpus.library", pool_size=8) as lib:
        smiles = await lib.get(123_456)
        batch = await lib.get_many(candidate_indices)   # fans out over the pool
        async for record in lib.stream(0, 10_000):       # paced block reads
            ...

An instance binds to the running event loop on first use (its internal
semaphore is an :class:`asyncio.Semaphore`); create one per loop.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import AsyncIterator, Callable, List, Optional, Sequence, TypeVar, Union

from ..core.codec import ZSmilesCodec
from ..errors import LibraryError, RandomAccessError
from ..store.reader import DEFAULT_CACHE_BLOCKS, BlockCache
from .facade import CorpusLibrary

PathLike = Union[str, Path]
T = TypeVar("T")

#: Default number of pooled readers (and therefore concurrent blocking reads).
DEFAULT_POOL_SIZE = 4
#: Default records fetched per :meth:`AsyncCorpusLibrary.stream` batch.
DEFAULT_STREAM_BATCH = 1024


class AsyncCorpusLibrary:
    """Concurrent, awaitable record serving over a pool of library readers."""

    def __init__(self, readers: Sequence[CorpusLibrary]):
        if not readers:
            raise LibraryError("AsyncCorpusLibrary needs at least one reader")
        self._readers: List[CorpusLibrary] = list(readers)
        self._idle: List[CorpusLibrary] = list(self._readers)
        self._idle_lock = threading.Lock()
        self._semaphore = asyncio.Semaphore(len(self._readers))
        self._closed = False

    @classmethod
    def open(
        cls,
        source: PathLike,
        codec: Optional[ZSmilesCodec] = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        verify_checksums: bool = True,
        use_mmap: bool = False,
    ) -> "AsyncCorpusLibrary":
        """Open *source* (library directory / manifest / ``.zss``) *pool_size* times.

        The pooled readers hold independent file handles (so blocking reads
        never contend on a seek position) but share one ``cache_blocks``
        LRU budget: a block decoded by any reader is a cache hit for all.
        """
        if pool_size < 1:
            raise LibraryError("pool_size must be >= 1")
        shared_cache = BlockCache(cache_blocks)
        shared_raw_cache = BlockCache(cache_blocks)
        readers: List[CorpusLibrary] = []
        try:
            for _ in range(pool_size):
                readers.append(
                    CorpusLibrary.open(
                        source,
                        codec=codec,
                        cache_blocks=cache_blocks,
                        verify_checksums=verify_checksums,
                        use_mmap=use_mmap,
                        cache=shared_cache,
                        raw_cache=shared_raw_cache,
                    )
                )
        except Exception:
            for reader in readers:
                reader.close()
            raise
        return cls(readers)

    # ------------------------------------------------------------------ #
    # Pool plumbing
    # ------------------------------------------------------------------ #
    @property
    def pool_size(self) -> int:
        return len(self._readers)

    def __len__(self) -> int:
        return len(self._readers[0])

    @property
    def manifest(self):
        """The pooled readers' shared manifest (they all open the same source)."""
        return self._readers[0].manifest

    def dictionary_identity(self):
        """The dictionary identity the shared manifest pins, or ``None``."""
        return self._readers[0].dictionary_identity()

    def cache_stats(self) -> dict:
        """Shared decoded-block cache counters across the whole reader pool.

        :meth:`open` hands every pooled reader the same :class:`BlockCache`,
        so the first reader's snapshot *is* the pool aggregate.
        """
        return self._readers[0].cache_stats()

    def quarantine_stats(self) -> dict:
        """Quarantined-block counters aggregated across the reader pool.

        Quarantine state is per-reader (each pooled reader owns its shard
        handles), so the pool aggregate sums every reader's counters and
        unions the per-shard damaged-block lists.
        """
        quarantined_union: dict = {}
        hits = 0
        for reader in self._readers:
            stats = reader.quarantine_stats()
            hits += stats["quarantine_hits"]
            for name, blocks in stats["shards"].items():
                merged = quarantined_union.setdefault(name, set())
                merged.update(blocks)
        shards = {name: sorted(blocks) for name, blocks in quarantined_union.items()}
        quarantined = sum(len(blocks) for blocks in shards.values())
        return {
            "quarantined_blocks": quarantined,
            "total_blocks_quarantined": quarantined,
            "quarantine_hits": hits,
            "shards": shards,
        }

    async def _call(self, fn: Callable[[CorpusLibrary], T]) -> T:
        """Run a blocking reader operation on a pooled reader in a thread."""
        if self._closed:
            raise LibraryError("AsyncCorpusLibrary is closed")
        async with self._semaphore:
            # Re-checked after the (possibly long) semaphore wait: a call
            # queued behind a full pool must not reopen handles that close()
            # released in the meantime.
            if self._closed:
                raise LibraryError("AsyncCorpusLibrary is closed")
            with self._idle_lock:
                reader = self._idle.pop()
            try:
                return await asyncio.to_thread(fn, reader)
            finally:
                # A close() racing an uncancellable worker thread may have
                # been undone by the reader lazily reopening its handles;
                # re-close here so nothing leaks past the pool's shutdown.
                if self._closed:
                    reader.close()
                with self._idle_lock:
                    self._idle.append(reader)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    async def get(self, index: int) -> str:
        """The record at global *index*."""
        return await self._call(lambda reader: reader.get(index))

    async def get_many(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records concurrently, preserving request order.

        The request is split into contiguous chunks fanned out over the
        reader pool, so one large batch saturates every pooled reader.
        """
        indices = list(indices)
        if not indices:
            return []
        chunk_size = -(-len(indices) // self.pool_size)  # ceil division
        chunks = [indices[i : i + chunk_size] for i in range(0, len(indices), chunk_size)]
        parts = await asyncio.gather(
            *(self._call(lambda reader, c=chunk: reader.get_many(c)) for chunk in chunks)
        )
        return [record for part in parts for record in part]

    async def stream(
        self,
        start: int = 0,
        stop: Optional[int] = None,
        batch_size: int = DEFAULT_STREAM_BATCH,
    ) -> AsyncIterator[str]:
        """Yield records ``start`` … ``stop`` (exclusive), batch by batch.

        Each batch is one blocking ``slice`` on a pooled reader; between
        batches the event loop is free to interleave other requests.
        """
        if batch_size < 1:
            raise LibraryError("batch_size must be >= 1")
        total = len(self)
        stop = total if stop is None else min(stop, total)
        if start < 0 or stop < start:
            raise RandomAccessError(f"invalid stream range [{start}, {stop})")
        cursor = start
        while cursor < stop:
            upper = min(cursor + batch_size, stop)
            batch = await self._call(lambda reader, a=cursor, b=upper: reader.slice(a, b))
            for record in batch:
                yield record
            cursor = upper

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every pooled reader (idempotent)."""
        self._closed = True
        for reader in self._readers:
            reader.close()

    async def aclose(self) -> None:
        """Async alias of :meth:`close`."""
        self.close()

    async def __aenter__(self) -> "AsyncCorpusLibrary":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()


def open_async_reader(
    source: Union[PathLike, Sequence[str]],
    codec: Optional[ZSmilesCodec] = None,
    pool_size: int = DEFAULT_POOL_SIZE,
    cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    use_mmap: bool = False,
):
    """The async counterpart of :func:`repro.store.open_reader`.

    An ``http://`` URL opens as an
    :class:`~repro.server.AsyncCorpusClient`; several URLs (a sequence, or
    one comma-separated string) open as an
    :class:`~repro.server.AsyncFailoverCorpusClient` that round-robins and
    fails over across the replicas; anything else opens as an
    :class:`AsyncCorpusLibrary` over the local layout (the server decodes
    for URLs, so *codec* only applies locally).  Every return type is an
    async context manager with ``get`` / ``get_many`` / ``sample`` and an
    async record stream, so async consumers accept any corpus the same way
    blocking ones do.
    """
    # Imported lazily — repro.server sits on top of this module.
    from ..server.protocol import split_replica_urls

    replica_urls = split_replica_urls(source)
    if replica_urls:
        if len(replica_urls) > 1:
            from ..server.async_client import AsyncFailoverCorpusClient

            return AsyncFailoverCorpusClient(replica_urls)
        from ..server.async_client import AsyncCorpusClient

        return AsyncCorpusClient(replica_urls[0])
    return AsyncCorpusLibrary.open(
        source,
        codec=codec,
        pool_size=pool_size,
        cache_blocks=cache_blocks,
        use_mmap=use_mmap,
    )
