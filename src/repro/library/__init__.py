"""Sharded, async-capable corpus serving: the ``repro.library`` subsystem.

This package is the serving API for packed SMILES corpora.  Consumers —
the screening pipeline, dataset loaders, the CLI, experiments — open one
:class:`CorpusLibrary` (or :class:`AsyncCorpusLibrary`) instead of
hand-wiring readers, codecs and dictionaries.

Serving a corpus — which layout to use
======================================

Four tiers serve the same :class:`~repro.store.protocol.RecordReader`
protocol — flat → ``.zss`` → sharded library → HTTP — pick by scale and
access pattern:

**Flat** (``.smi`` / ``.zsmi`` + ``.zsx`` sidecar index) —
:class:`~repro.core.random_access.RandomAccessReader`.  One seek per
record, an index entry per record.  Right for small corpora, debugging,
and line-oriented tooling; the documented fallback.

**Single-shard store** (``.zss``) — :class:`~repro.store.CorpusStore`.
Fixed-size blocks of codec output with a footer index, CRC-32 checks, LRU
block cache and an embeddable dictionary.  Right for any corpus that is
packed once and served many times from one process.

**Sharded library** (``library.json`` + N ``.zss`` shards) —
:class:`CorpusLibrary` over :class:`ShardedCorpusStore`.  The manifest
routes global indices to shards, shards open lazily, and all shards share
one LRU cache budget; ``use_mmap=True`` serves block reads from read-only
memory maps.  Right at scale: corpora too big for one file, parallel
packing, and concurrent serving.  :class:`AsyncCorpusLibrary` adds
``await get`` / ``get_many`` / ``stream`` over a bounded reader pool for
high-fanout consumers (e.g. generative screening loops).

**Network service** (``http://host:port``) — :mod:`repro.server`.  A
``zsmiles serve`` process (or :class:`~repro.server.CorpusServer` embedded
in yours) mounts an :class:`AsyncCorpusLibrary` and speaks HTTP/1.1:
``GET /records/{i}``, ``POST /records:batch``, a chunked
``GET /records?start=&stop=`` range stream, ``/stats`` and ``/healthz``.
Right when consumers are *other processes or machines*: the corpus is
packed once, served by one process, and every consumer reads it through
:class:`~repro.server.CorpusClient` — or just ``open_reader("http://…")``,
which satisfies this same protocol.  The bounded reader pool caps
concurrent block decodes, so a burst of clients queues instead of
thundering the disk.

Packing::

    engine = ZSmilesEngine.from_dictionary("shared.dct")
    info = pack_library("corpus.library", smiles, engine, shards=8)
    # or: zsmiles pack corpus.smi -d shared.dct --shards 8
    # whole shards in parallel across processes (byte-identical):
    #     zsmiles pack corpus.smi -d shared.dct --shards 8 --shard-jobs 4
    # concatenate packed libraries without repacking (manifest-only):
    #     zsmiles compose corpora/batch-*.library -o corpora

Serving::

    with CorpusLibrary.open("corpus.library") as lib:      # sync
        lib.get(123), lib.get_many(batch), lib.slice(0, 100)

    async with AsyncCorpusLibrary.open("corpus.library") as lib:
        await lib.get_many(batch)                           # concurrent

    # over the network (zsmiles serve corpus.library --port 8765):
    with open_reader("http://127.0.0.1:8765") as remote:
        remote.get(123), remote.get_many(batch)

Migrating from ``open_reader``
==============================

:func:`repro.store.open_reader` remains the suffix-dispatching shim and now
hands library directories / ``library.json`` paths to
:meth:`CorpusLibrary.open`, so existing call sites gain sharded serving by
being pointed at a manifest — no code change.  New code that knows it is
serving packed corpora should call :meth:`CorpusLibrary.open` directly
(it also accepts a bare ``.zss``).
"""

from .async_api import (
    DEFAULT_POOL_SIZE,
    DEFAULT_STREAM_BATCH,
    AsyncCorpusLibrary,
    open_async_reader,
)
from .compose import compose_libraries, compose_manifests
from .facade import CorpusLibrary
from .manifest import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    LibraryManifest,
    ShardEntry,
    is_packed_path,
    resolve_manifest_path,
)
from .sharded import ShardedCorpusStore
from .writer import (
    SHARD_NAME_FORMAT,
    LibraryInfo,
    LibraryWriter,
    pack_library,
    pack_library_file,
    split_counts,
)

__all__ = [
    "AsyncCorpusLibrary",
    "CorpusLibrary",
    "DEFAULT_POOL_SIZE",
    "DEFAULT_STREAM_BATCH",
    "LibraryInfo",
    "LibraryManifest",
    "LibraryWriter",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "SHARD_NAME_FORMAT",
    "ShardEntry",
    "ShardedCorpusStore",
    "compose_libraries",
    "compose_manifests",
    "is_packed_path",
    "open_async_reader",
    "pack_library",
    "pack_library_file",
    "resolve_manifest_path",
    "split_counts",
]
