"""Manifest-level library composition: concatenate corpora without repacking.

A ``library.json`` manifest is just a routing table over ``.zss`` shard
files, so concatenating libraries needs no codec work at all: a composed
manifest lists every source library's shards in order, with the global
record ranges re-based — the shards themselves are never opened, copied or
rewritten.  Composing a 10-billion-record corpus out of per-batch packs is
a JSON write.

The one constraint is the manifest contract: shard names are *relative*
paths under the manifest's directory (no ``..``, no absolute paths), so the
composed manifest must live at a common ancestor of every source library::

    corpora/
      batch-a.library/   shard-0000.zss ...
      batch-b.library/   shard-0000.zss ...
      library.json       <- compose_libraries("corpora", ["corpora/batch-a.library",
                                                          "corpora/batch-b.library"])

Records keep their within-source order; source N+1's records follow source
N's, which is exactly how :class:`~repro.library.CorpusLibrary` then serves
them.  Composing the same library twice is legal only through distinct
shard files (the manifest rejects duplicate names) — compose routes
*files*, not logical corpora.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ManifestError
from .manifest import (
    DICTIONARY_IDENTITY_KEY,
    MANIFEST_NAME,
    LibraryManifest,
    ShardEntry,
    resolve_manifest_path,
)

PathLike = Union[str, Path]


def _relative_name(shard_path: Path, root: Path) -> str:
    """Shard path relative to the composed manifest's directory (validated)."""
    try:
        return shard_path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError as exc:
        raise ManifestError(
            f"shard {shard_path} is not under the composed library root {root}: "
            "compose the manifest at a common ancestor of every source library"
        ) from exc


def compose_manifests(
    sources: Sequence[PathLike],
    root: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> LibraryManifest:
    """Build one manifest concatenating the shards of several libraries.

    Parameters
    ----------
    sources:
        Source libraries, in concatenation order: library directories,
        ``library.json`` paths, or bare ``.zss`` shard files.
    root:
        Directory the composed manifest will live in; every source shard
        must sit beneath it.
    metadata:
        Metadata for the composed manifest.  Defaults to recording the
        source list under ``"composed_from"``.

    Purely manifest-level: shard sizes and block counts are copied from the
    source manifests (or, for a bare ``.zss``, read from its footer — the
    only case a shard file is touched at all).
    """
    if not sources:
        raise ManifestError("compose needs at least one source library")
    root = Path(root)
    entries: List[ShardEntry] = []
    names: List[str] = []
    identities: List[Optional[Dict[str, object]]] = []
    start = 0
    for source in sources:
        pairs, identity_obj = _source_entries(Path(source))
        for shard_path, entry in pairs:
            entries.append(
                ShardEntry(
                    name=_relative_name(shard_path, root),
                    start=start,
                    records=entry.records,
                    blocks=entry.blocks,
                    records_per_block=entry.records_per_block,
                    file_bytes=entry.file_bytes,
                )
            )
            start += entry.records
        names.append(str(source))
        identities.append(identity_obj)
    if metadata is None:
        metadata = {"composed_from": names}
        shared = _shared_identity(identities)
        if shared is not None:
            metadata[DICTIONARY_IDENTITY_KEY] = shared
    return LibraryManifest(shards=tuple(entries), metadata=dict(metadata))


def _shared_identity(
    identities: Sequence[Optional[Dict[str, object]]],
) -> Optional[Dict[str, object]]:
    """The one dictionary identity all sources agree on, else ``None``.

    A composed manifest may only pin a dictionary when *every* source pins
    the same content hash — otherwise the sharded store's hash-agreement
    check would reject shards that are in fact exactly what their source
    library packed.
    """
    if not identities or any(obj is None for obj in identities):
        return None
    hashes = {obj.get("hash") for obj in identities if isinstance(obj, dict)}
    if len(hashes) != 1 or not all(isinstance(h, str) for h in hashes):
        return None
    return dict(identities[0])


def _source_entries(
    source: Path,
) -> Tuple[List[Tuple[Path, ShardEntry]], Optional[Dict[str, object]]]:
    """One source's ``(absolute path, entry)`` pairs plus its pinned identity."""
    manifest_path = resolve_manifest_path(source)
    if manifest_path is not None:
        manifest = LibraryManifest.load(manifest_path)
        source_root = manifest_path.parent
        identity = manifest.metadata.get(DICTIONARY_IDENTITY_KEY)
        return (
            [(source_root / entry.name, entry) for entry in manifest.shards],
            identity if isinstance(identity, dict) else None,
        )
    from ..store.format import STORE_SUFFIX

    if source.is_file() and source.suffix == STORE_SUFFIX:
        # A bare .zss shard: synthesize its entry from the footer, exactly
        # like CorpusLibrary.open's one-shard wrapping.
        synthetic = LibraryManifest.from_shards([source])
        return [(source, synthetic.shards[0])], None
    raise ManifestError(
        f"cannot compose {source}: expected a library directory, a "
        "library.json manifest, or a .zss shard"
    )


def compose_libraries(
    output: PathLike,
    sources: Sequence[PathLike],
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write a composed ``library.json`` at *output*; returns the manifest path.

    *output* is the composed library's directory (created if missing) or an
    explicit ``*.json`` path.  The result opens with
    :meth:`~repro.library.CorpusLibrary.open` like any other library and
    serves source A's records at global indices ``[0, len(A))``, source B's
    at ``[len(A), len(A)+len(B))``, and so on — no bytes repacked.
    """
    output = Path(output)
    if output.suffix == ".json":
        manifest_path = output
        root = output.parent
        root.mkdir(parents=True, exist_ok=True)
    else:
        output.mkdir(parents=True, exist_ok=True)
        manifest_path = output / MANIFEST_NAME
        root = output
    manifest = compose_manifests(sources, root, metadata=metadata)
    manifest.save(manifest_path)
    return manifest_path
