"""Packing corpora into sharded libraries: :class:`LibraryWriter`.

A library pack splits the corpus into N contiguous chunks, packs each chunk
into its own ``.zss`` shard through the
:class:`~repro.engine.ZSmilesEngine` batch surface (``backend="auto"`` /
``jobs`` spread each shard's blocks over the process pool; every path —
in-process and worker — compresses through the flat-array kernel of
:mod:`repro.engine.kernel`), and writes the ``library.json`` manifest
recording every shard's global record range.

Because records are compressed one line at a time, the shard split never
changes the stored bytes: a 4-shard library holds exactly the records a
single-shard pack would, just cut at different file boundaries — which is
what the cross-shard parity tests pin.

Shards pack sequentially by default (each shard's *blocks* may still spread
over the engine's process pool).  With ``shard_jobs=N`` (``cli pack
--shard-jobs N``) whole shards pack concurrently across worker processes
instead — each worker rebuilds the engine from the pickled codec and packs
one shard through the in-process kernel — and the output is byte-identical
to a sequential pack (pinned by the parallel-packing parity tests).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.codec import ZSmilesCodec
from ..dictionary.serialization import DictionaryIdentity
from ..engine.engine import ZSmilesEngine
from ..errors import LibraryError
from ..store.format import DICTIONARY_HASH_META_KEY, STORE_SUFFIX
from ..store.writer import DEFAULT_BATCH_BLOCKS, DEFAULT_RECORDS_PER_BLOCK, StoreInfo, pack_records
from .manifest import DICTIONARY_IDENTITY_KEY, LibraryManifest

PathLike = Union[str, Path]

#: Shard file-name pattern inside a library directory.
SHARD_NAME_FORMAT = "shard-{:04d}" + STORE_SUFFIX


@dataclass(frozen=True)
class LibraryInfo:
    """Summary of one packed library.

    Attributes
    ----------
    directory:
        The library directory.
    manifest_path:
        Where ``library.json`` was written.
    manifest:
        The written manifest.
    shards:
        Per-shard :class:`~repro.store.writer.StoreInfo` summaries.
    """

    directory: Path
    manifest_path: Path
    manifest: LibraryManifest
    shards: Tuple[StoreInfo, ...]

    @property
    def records(self) -> int:
        return sum(info.records for info in self.shards)

    @property
    def blocks(self) -> int:
        return sum(info.blocks for info in self.shards)

    @property
    def payload_bytes(self) -> int:
        return sum(info.payload_bytes for info in self.shards)

    @property
    def file_bytes(self) -> int:
        return sum(info.file_bytes for info in self.shards)

    @property
    def original_bytes(self) -> int:
        return sum(info.original_bytes for info in self.shards)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def ratio(self) -> float:
        """Payload bytes over raw bytes (lower is better)."""
        if self.original_bytes == 0:
            return 1.0
        return self.payload_bytes / self.original_bytes


def _pack_shard_job(
    path_str: str,
    records: List[str],
    codec: ZSmilesCodec,
    records_per_block: int,
    batch_blocks: int,
    metadata: Dict[str, object],
    embed_dictionary: bool,
) -> StoreInfo:
    """Pack one shard in a worker process (module-level: must pickle).

    The engine is rebuilt from the pickled codec with the in-process kernel
    backend — never ``"auto"``, which could nest a process pool inside the
    worker.  Per-record output is backend-invariant, so the shard bytes are
    identical to a sequential pack.
    """
    with ZSmilesEngine.from_codec(codec, backend="kernel") as engine:
        return pack_records(
            Path(path_str),
            records,
            engine,
            records_per_block=records_per_block,
            batch_blocks=batch_blocks,
            metadata=metadata,
            embed_dictionary=embed_dictionary,
        )


def split_counts(total: int, shards: int) -> List[int]:
    """Balanced contiguous chunk sizes: ``total`` records over ``shards`` shards.

    The first ``total % shards`` shards get one extra record; shard count is
    clamped so no shard is empty (a 3-record corpus packs into at most 3
    shards).
    """
    if shards < 1:
        raise LibraryError("shard count must be >= 1")
    shards = max(1, min(shards, total)) if total else 1
    base, extra = divmod(total, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


class LibraryWriter:
    """Write one sharded library: N ``.zss`` shards plus ``library.json``.

    Parameters
    ----------
    directory:
        Library directory (created if missing).
    engine:
        Engine compressing the records.
    shards:
        Target shard count (clamped so no shard is empty).
    records_per_block:
        Block granularity of every shard.
    backend / batch_blocks:
        Engine batching knobs, as for :class:`~repro.store.writer.ShardWriter`.
    metadata:
        Extra key/value pairs stored in the manifest metadata.
    embed_dictionary:
        Embed the engine's dictionary in every shard footer so each shard —
        and therefore the library — is self-describing.
    shard_jobs:
        Worker processes packing whole shards concurrently (``None``/1 =
        sequential).  Byte-identical to the sequential pack; most useful
        for many-shard libraries where per-shard batches are too small to
        feed the engine's block-level process pool.
    """

    def __init__(
        self,
        directory: PathLike,
        engine: ZSmilesEngine,
        shards: int = 1,
        records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
        backend: Optional[str] = None,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
        metadata: Optional[Dict[str, object]] = None,
        embed_dictionary: bool = True,
        shard_jobs: Optional[int] = None,
    ):
        if shards < 1:
            raise LibraryError("shard count must be >= 1")
        if shard_jobs is not None and shard_jobs < 1:
            raise LibraryError("shard_jobs must be >= 1")
        self.directory = Path(directory)
        self.engine = engine
        self.shards = shards
        self.records_per_block = records_per_block
        self.backend = backend
        self.batch_blocks = batch_blocks
        self.metadata = dict(metadata or {})
        self.embed_dictionary = embed_dictionary
        self.shard_jobs = shard_jobs

    def pack(self, records: Iterable[str]) -> LibraryInfo:
        """Pack *records* into the library and write its manifest."""
        records = list(records)
        counts = split_counts(len(records), self.shards)
        self.directory.mkdir(parents=True, exist_ok=True)
        paths = [
            self.directory / SHARD_NAME_FORMAT.format(shard_no)
            for shard_no in range(len(counts))
        ]
        identity = DictionaryIdentity.of(self.engine.table)
        shard_metadata = [
            {
                "shard": shard_no,
                "shard_count": len(counts),
                DICTIONARY_HASH_META_KEY: identity.hash,
            }
            for shard_no in range(len(counts))
        ]
        jobs = min(self.shard_jobs or 1, len(counts))
        if jobs > 1:
            # Whole shards across processes: same spawn discipline as the
            # engine's ProcessPoolBackend, shard order preserved by map().
            # The chunk list is a second copy of the corpus, but the workers
            # need the records shipped to them anyway.
            chunks: List[List[str]] = []
            cursor = 0
            for count in counts:
                chunks.append(records[cursor : cursor + count])
                cursor += count
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context("spawn"),
            ) as pool:
                infos = list(
                    pool.map(
                        _pack_shard_job,
                        [str(path) for path in paths],
                        chunks,
                        [self.engine.codec] * len(counts),
                        [self.records_per_block] * len(counts),
                        [self.batch_blocks] * len(counts),
                        shard_metadata,
                        [self.embed_dictionary] * len(counts),
                    )
                )
        else:
            # Sequential: slice one shard's records transiently per
            # iteration rather than materializing every chunk up front.
            infos = []
            cursor = 0
            for path, count, meta in zip(paths, counts, shard_metadata):
                infos.append(
                    pack_records(
                        path,
                        records[cursor : cursor + count],
                        self.engine,
                        records_per_block=self.records_per_block,
                        backend=self.backend,
                        batch_blocks=self.batch_blocks,
                        metadata=meta,
                        embed_dictionary=self.embed_dictionary,
                    )
                )
                cursor += count
        metadata = dict(self.metadata)
        metadata.setdefault("dictionary_embedded", self.embed_dictionary)
        metadata.setdefault(DICTIONARY_IDENTITY_KEY, identity.to_json_obj())
        manifest = LibraryManifest.from_shards(paths, metadata=metadata, root=self.directory)
        manifest_path = manifest.save(self.directory)
        return LibraryInfo(
            directory=self.directory,
            manifest_path=manifest_path,
            manifest=manifest,
            shards=tuple(infos),
        )


def pack_library(
    directory: PathLike,
    records: Iterable[str],
    engine: ZSmilesEngine,
    shards: int = 1,
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
    backend: Optional[str] = None,
    batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    metadata: Optional[Dict[str, object]] = None,
    embed_dictionary: bool = True,
    shard_jobs: Optional[int] = None,
) -> LibraryInfo:
    """Pack an iterable of plain records into a sharded library at *directory*."""
    return LibraryWriter(
        directory,
        engine,
        shards=shards,
        records_per_block=records_per_block,
        backend=backend,
        batch_blocks=batch_blocks,
        metadata=metadata,
        embed_dictionary=embed_dictionary,
        shard_jobs=shard_jobs,
    ).pack(records)


def pack_library_file(
    input_path: PathLike,
    directory: Optional[PathLike] = None,
    engine: Optional[ZSmilesEngine] = None,
    shards: int = 1,
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
    backend: Optional[str] = None,
    batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    metadata: Optional[Dict[str, object]] = None,
    embed_dictionary: bool = True,
    shard_jobs: Optional[int] = None,
) -> LibraryInfo:
    """Pack a line-oriented ``.smi`` file into a sharded library.

    The default library directory swaps the input suffix for ``.library``
    (``data.smi`` → ``data.library/``).
    """
    if engine is None:
        raise LibraryError("pack_library_file needs an engine to compress records")
    from ..core.streaming import read_lines

    input_path = Path(input_path)
    if directory is None:
        directory = input_path.with_suffix(".library")
    return pack_library(
        directory,
        read_lines(input_path),
        engine,
        shards=shards,
        records_per_block=records_per_block,
        backend=backend,
        batch_blocks=batch_blocks,
        metadata=metadata,
        embed_dictionary=embed_dictionary,
        shard_jobs=shard_jobs,
    )
