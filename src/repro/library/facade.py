""":class:`CorpusLibrary` — the one serving facade for packed corpora.

``CorpusLibrary.open`` accepts anything packed: a library directory, its
``library.json`` manifest, or a bare single ``.zss`` shard (wrapped in a
synthetic one-shard manifest), and serves the
:class:`~repro.store.protocol.RecordReader` protocol over a
:class:`~repro.library.sharded.ShardedCorpusStore`.  Flat ``.smi`` /
``.zsmi`` files stay with :func:`repro.store.open_reader`, which dispatches
manifests here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from ..core.codec import ZSmilesCodec
from ..errors import LibraryError
from ..store.format import STORE_SUFFIX
from ..store.reader import DEFAULT_CACHE_BLOCKS, BlockCache, ShardReader
from .manifest import LibraryManifest, resolve_manifest_path
from .sharded import ShardedCorpusStore

PathLike = Union[str, Path]


class CorpusLibrary:
    """Serve records out of a packed corpus, whatever shape it was packed in.

    Construct through :meth:`open`; the instance delegates the whole
    :class:`~repro.store.protocol.RecordReader` surface (plus ``get_raw`` and
    the ``line``/``lines`` aliases) to its underlying
    :class:`~repro.library.sharded.ShardedCorpusStore`.
    """

    def __init__(self, store: ShardedCorpusStore, path: Path):
        self.store = store
        self.path = path

    @classmethod
    def open(
        cls,
        source: PathLike,
        codec: Optional[ZSmilesCodec] = None,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        verify_checksums: bool = True,
        use_mmap: bool = False,
        cache: Optional[BlockCache] = None,
        raw_cache: Optional[BlockCache] = None,
    ) -> "CorpusLibrary":
        """Open a library directory, a ``library.json``, or a bare ``.zss``."""
        path = Path(source)
        manifest_path = resolve_manifest_path(path)
        if manifest_path is not None:
            store = ShardedCorpusStore.open(
                manifest_path,
                codec=codec,
                cache_blocks=cache_blocks,
                verify_checksums=verify_checksums,
                use_mmap=use_mmap,
                cache=cache,
                raw_cache=raw_cache,
            )
            return cls(store, manifest_path)
        if path.suffix == STORE_SUFFIX and path.is_file():
            manifest = LibraryManifest.from_shards([path])
            store = ShardedCorpusStore(
                manifest,
                path.parent,
                codec=codec,
                cache_blocks=cache_blocks,
                verify_checksums=verify_checksums,
                use_mmap=use_mmap,
                cache=cache,
                raw_cache=raw_cache,
            )
            return cls(store, path)
        raise LibraryError(
            f"cannot open {path} as a corpus library: expected a library "
            f"directory, a library.json manifest, or a {STORE_SUFFIX} shard"
        )

    # ------------------------------------------------------------------ #
    # Library surface
    # ------------------------------------------------------------------ #
    @property
    def manifest(self) -> LibraryManifest:
        return self.store.manifest

    def dictionary_identity(self):
        """The dictionary identity the library's manifest pins, or ``None``."""
        return self.store.dictionary_identity()

    @property
    def shard_count(self) -> int:
        return self.store.shard_count

    @property
    def open_shard_count(self) -> int:
        return self.store.open_shard_count

    def shard(self, shard_no: int) -> ShardReader:
        """The (lazily opened) reader for shard *shard_no*."""
        return self.store.shard(shard_no)

    @property
    def cache_hits(self) -> int:
        return self.store.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.store.cache_misses

    def cache_stats(self) -> dict:
        """Hit/miss/occupancy snapshot of the shared decoded-block cache."""
        return self.store.cache_stats()

    def quarantine_stats(self) -> dict:
        """Quarantined-block counters (degraded-read observability)."""
        return self.store.quarantine_stats()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "CorpusLibrary":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Access (RecordReader protocol, delegated)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.store)

    def get(self, index: int) -> str:
        """The record at global *index*."""
        return self.store.get(index)

    def __getitem__(self, index: int) -> str:
        return self.store.get(index)

    def get_raw(self, index: int) -> str:
        """The stored (compressed) record at global *index*."""
        return self.store.get_raw(index)

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records by global index, preserving request order."""
        return self.store.get_many(indices)

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        return self.store.slice(start, stop)

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record, in global order."""
        return self.store.iter_all()

    def sample(self, n: int, seed=None) -> tuple:
        """Seeded uniform sample without replacement: ``(indices, records)``.

        Same semantics as ``GET /records:sample`` on the HTTP tier, so a
        campaign driver can sample through either transport identically.
        """
        return self.store.sample(n, seed)

    def line(self, index: int) -> str:
        """Alias of :meth:`get`."""
        return self.store.get(index)

    def lines(self, indices: Sequence[int]) -> List[str]:
        """Alias of :meth:`get_many`."""
        return self.store.get_many(indices)
