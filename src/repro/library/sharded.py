"""Serving records out of a sharded library: :class:`ShardedCorpusStore`.

The store is manifest-driven: ``len()`` and global-index → (shard, local)
routing come straight from ``library.json``, so *no* shard file is opened
until one of its records is actually requested (``open_shard_count`` makes
that observable).  All shards share one LRU block-cache budget through
:class:`~repro.store.reader.BlockCacheView` — a library of 64 shards under
``cache_blocks=16`` holds at most 16 decoded blocks in memory, not 1024.

The class satisfies the :class:`~repro.store.protocol.RecordReader`
protocol, so everything that serves records (screening, dataset loaders,
the CLI) takes it interchangeably with ``CorpusStore`` and the flat
``RandomAccessReader``.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..core.codec import ZSmilesCodec
from ..errors import DictionaryMismatchError, ManifestError
from ..store.format import DICTIONARY_HASH_META_KEY
from ..store.reader import (
    DEFAULT_CACHE_BLOCKS,
    BlockCache,
    BlockCacheView,
    RecordAccessMixin,
    ShardReader,
)
from .manifest import LibraryManifest, resolve_manifest_path

PathLike = Union[str, Path]


class ShardedCorpusStore(RecordAccessMixin):
    """One logical corpus served out of the N shards a manifest describes.

    Parameters
    ----------
    manifest:
        The library's routing table.
    root:
        Directory the manifest's relative shard names resolve against.
    codec:
        Codec override; per-shard embedded dictionaries are used when omitted.
    cache_blocks:
        Shared LRU budget: the maximum number of decoded blocks cached across
        *all* shards together (ignored when *cache* is given).
    verify_checksums:
        Validate block CRC-32s on first decode.
    use_mmap:
        Serve shard block reads from read-only memory maps.
    cache / raw_cache:
        Externally owned :class:`~repro.store.reader.BlockCache` instances
        replacing the store's private ones, so several stores (e.g. an
        async reader pool) share one budget.  Entries are keyed by resolved
        shard path, so distinct libraries can share a cache safely —
        provided the sharers decode with the same codec.
    """

    def __init__(
        self,
        manifest: LibraryManifest,
        root: PathLike,
        codec: Optional[ZSmilesCodec] = None,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        verify_checksums: bool = True,
        use_mmap: bool = False,
        cache: Optional[BlockCache] = None,
        raw_cache: Optional[BlockCache] = None,
    ):
        self.manifest = manifest
        self.root = Path(root)
        self._codec = codec
        self.verify_checksums = verify_checksums
        self.use_mmap = use_mmap
        self._cache = cache if cache is not None else BlockCache(cache_blocks)
        self._raw_cache = raw_cache if raw_cache is not None else BlockCache(cache_blocks)
        self._readers: List[Optional[ShardReader]] = [None] * manifest.shard_count
        self._open_lock = threading.Lock()

    @classmethod
    def open(cls, path: PathLike, **kwargs: object) -> "ShardedCorpusStore":
        """Open a library from its directory or its ``library.json`` path."""
        manifest_path = resolve_manifest_path(path)
        if manifest_path is None:
            raise ManifestError(f"{path} is not a library directory or manifest")
        manifest = LibraryManifest.load(manifest_path)
        return cls(manifest, manifest_path.parent, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # Shard management
    # ------------------------------------------------------------------ #
    def shard(self, shard_no: int) -> ShardReader:
        """The (lazily opened) reader for shard *shard_no*."""
        reader = self._readers[shard_no]
        if reader is None:
            with self._open_lock:
                reader = self._readers[shard_no]
                if reader is None:
                    entry = self.manifest.shards[shard_no]
                    shard_path = self.root / entry.name
                    # Namespaced by resolved shard path, not shard number:
                    # two libraries handed the same external cache= must
                    # never collide on each other's block keys.
                    namespace = str(shard_path.resolve())
                    reader = ShardReader(
                        shard_path,
                        codec=self._codec,
                        verify_checksums=self.verify_checksums,
                        use_mmap=self.use_mmap,
                        cache=BlockCacheView(self._cache, namespace),
                        raw_cache=BlockCacheView(self._raw_cache, namespace),
                    )
                    if len(reader) != entry.records:
                        actual = len(reader)
                        reader.close()
                        raise ManifestError(
                            f"shard {entry.name!r} holds {actual} records but the "
                            f"manifest promises {entry.records}"
                        )
                    self._check_shard_dictionary(reader, entry)
                    self._readers[shard_no] = reader
        return reader

    def _check_shard_dictionary(self, reader: ShardReader, entry) -> None:
        """Manifest-pinned dictionary hash must match the shard footer's.

        Cheap metadata comparison (no dictionary parse): catches a shard
        file swapped in from a library packed with a different dictionary.
        Skipped when the caller supplied an explicit codec override — that
        is a deliberate choice to decode with something else — or when
        either side predates hash pinning.
        """
        if self._codec is not None:
            return
        identity = self.manifest.dictionary_identity()
        if identity is None:
            return
        declared = reader.footer.metadata.get(DICTIONARY_HASH_META_KEY)
        if not isinstance(declared, str) or not declared:
            return
        if declared != identity.hash:
            reader.close()
            raise DictionaryMismatchError(
                f"shard {entry.name!r} was packed with dictionary "
                f"{declared[:12]} but the manifest pins "
                f"{identity.short_hash}: re-pack or fix the manifest"
            )

    def dictionary_identity(self):
        """The dictionary identity the manifest pins, or ``None``."""
        return self.manifest.dictionary_identity()

    @property
    def shard_count(self) -> int:
        return self.manifest.shard_count

    @property
    def open_shard_count(self) -> int:
        """How many shards have actually been opened (lazy-open observable)."""
        return sum(1 for reader in self._readers if reader is not None)

    @property
    def cached_blocks(self) -> int:
        """Decoded blocks currently held by the shared cache."""
        return len(self._cache)

    @property
    def cache_capacity(self) -> int:
        return self._cache.capacity

    @property
    def cache_hits(self) -> int:
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        return self._cache.misses

    def cache_stats(self) -> dict:
        """Hit/miss/occupancy snapshot of the shared decoded-block cache."""
        return self._cache.stats()

    def quarantine_stats(self) -> dict:
        """Quarantined-block counters aggregated across opened shards.

        A quarantined block is one whose integrity check failed; its reads
        raise :class:`~repro.errors.BlockCorruptionError` while every other
        block keeps serving.  Unopened shards contribute nothing — they
        have not been read, so nothing can be quarantined yet.
        """
        quarantined = 0
        hits = 0
        shards: dict = {}
        for shard_no, reader in enumerate(self._readers):
            if reader is None:
                continue
            stats = reader.quarantine_stats()
            quarantined += stats["quarantined_blocks"]
            hits += stats["quarantine_hits"]
            if stats["blocks"]:
                shards[self.manifest.shards[shard_no].name] = stats["blocks"]
        return {
            "quarantined_blocks": quarantined,
            "total_blocks_quarantined": quarantined,
            "quarantine_hits": hits,
            "shards": shards,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every opened shard (idempotent; shards reopen on demand)."""
        for reader in self._readers:
            if reader is not None:
                reader.close()

    def __enter__(self) -> "ShardedCorpusStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Access (RecordReader protocol)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.manifest.total_records

    def get(self, index: int) -> str:
        """The record at global *index*, routed through the manifest."""
        shard_no, local = self.manifest.locate(index)
        return self.shard(shard_no).get(local)

    def get_raw(self, index: int) -> str:
        """The stored (compressed) record at global *index*."""
        shard_no, local = self.manifest.locate(index)
        return self.shard(shard_no).get_raw(local)

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record of every shard, in global order."""
        for shard_no in range(self.shard_count):
            yield from self.shard(shard_no).iter_all()
