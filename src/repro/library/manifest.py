"""The ``library.json`` manifest describing a sharded corpus library.

A library is a directory holding N ``.zss`` shards plus one manifest that
assigns every shard a contiguous *global record range*.  The manifest is the
routing table: ``total_records``, ``len()`` and global-index → (shard,
local-index) resolution all come from it, so a reader can route requests
without opening a single shard file.

Manifest layout (deterministic JSON, sorted keys)::

    {
      "format": "zsmiles-library",
      "version": 1,
      "total_records": 1000,
      "shards": [
        {"name": "shard-0000.zss", "start": 0, "records": 334,
         "blocks": 3, "records_per_block": 128, "file_bytes": 5210},
        {"name": "shard-0001.zss", "start": 334, "records": 333, ...},
        {"name": "shard-0002.zss", "start": 667, "records": 333, ...}
      ],
      "metadata": {"dictionary_embedded": true}
    }

Shard names are paths relative to the manifest's directory, so a library
moves as a unit.  ``start`` ranges must tile ``[0, total_records)`` without
gaps — validated on construction and again on load.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ManifestError, RandomAccessError

PathLike = Union[str, Path]

#: File-format marker stored under the ``"format"`` key.
MANIFEST_FORMAT = "zsmiles-library"
#: Current manifest schema version.
MANIFEST_VERSION = 1
#: Conventional manifest file name inside a library directory.
MANIFEST_NAME = "library.json"
#: Metadata key under which a library pins its dictionary's identity.
DICTIONARY_IDENTITY_KEY = "dictionary"


@dataclass(frozen=True)
class ShardEntry:
    """One shard's slot in the library: its file and its global record range.

    Attributes
    ----------
    name:
        Shard path relative to the manifest's directory.
    start:
        Global index of the shard's first record.
    records:
        Number of records the shard holds.
    blocks:
        Number of blocks in the shard (informational).
    records_per_block:
        Block granularity of the shard (informational).
    file_bytes:
        On-disk size of the shard file (informational).
    """

    name: str
    start: int
    records: int
    blocks: int
    records_per_block: int
    file_bytes: int

    @property
    def stop(self) -> int:
        """One past the shard's last global record index."""
        return self.start + self.records

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "records": self.records,
            "blocks": self.blocks,
            "records_per_block": self.records_per_block,
            "file_bytes": self.file_bytes,
        }

    @classmethod
    def from_json_obj(cls, obj: object) -> "ShardEntry":
        if not isinstance(obj, dict):
            raise ManifestError("shard entry must be a JSON object")
        if not isinstance(obj.get("name"), str):
            raise ManifestError(f"shard entry name must be a string: {obj!r}")
        try:
            entry = cls(
                name=obj["name"],
                start=int(obj["start"]),
                records=int(obj["records"]),
                blocks=int(obj.get("blocks", 0)),
                records_per_block=int(obj.get("records_per_block", 1)),
                file_bytes=int(obj.get("file_bytes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed shard entry: {obj!r}") from exc
        return entry


@dataclass(frozen=True)
class LibraryManifest:
    """Parsed, validated ``library.json``: the shard table plus metadata."""

    shards: Tuple[ShardEntry, ...]
    metadata: Dict[str, object] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def __post_init__(self) -> None:
        if not self.shards:
            raise ManifestError("a library needs at least one shard")
        if self.version != MANIFEST_VERSION:
            raise ManifestError(f"unsupported manifest version {self.version}")
        seen: set = set()
        expected_start = 0
        for number, shard in enumerate(self.shards):
            if not isinstance(shard.name, str) or not shard.name:
                raise ManifestError(f"shard {number} needs a non-empty string name")
            if Path(shard.name).is_absolute() or ".." in Path(shard.name).parts:
                raise ManifestError(
                    f"shard {number} name {shard.name!r} must be a relative path "
                    "inside the library directory"
                )
            if shard.name in seen:
                raise ManifestError(f"duplicate shard name {shard.name!r}")
            seen.add(shard.name)
            if shard.records < 0:
                raise ManifestError(f"shard {number} has negative record count")
            if shard.start != expected_start:
                raise ManifestError(
                    f"shard {number} starts at {shard.start}, expected {expected_start}: "
                    "global record ranges must be contiguous"
                )
            expected_start = shard.stop
        # Cached cumulative starts for bisect routing (frozen dataclass).
        object.__setattr__(self, "_starts", [shard.start for shard in self.shards])

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def total_records(self) -> int:
        """Number of records across all shards."""
        return self.shards[-1].stop

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def locate(self, index: int) -> Tuple[int, int]:
        """Resolve a global record *index* to ``(shard_number, local_index)``."""
        if not 0 <= index < self.total_records:
            raise RandomAccessError(
                f"record {index} out of range [0, {self.total_records})"
            )
        shard_no = bisect_right(self._starts, index) - 1  # type: ignore[attr-defined]
        return shard_no, index - self.shards[shard_no].start

    def shard_path(self, shard_no: int, root: PathLike) -> Path:
        """Absolute path of shard *shard_no* under the library *root*."""
        return Path(root) / self.shards[shard_no].name

    def dictionary_identity(self):
        """The dictionary identity this manifest pins, or ``None``.

        Returns a :class:`~repro.dictionary.serialization.DictionaryIdentity`
        when the metadata carries a well-formed ``"dictionary"`` object
        (libraries packed before the lifecycle existed simply have none).
        """
        from ..dictionary.serialization import DictionaryIdentity

        return DictionaryIdentity.from_json_obj(
            self.metadata.get(DICTIONARY_IDENTITY_KEY)
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Deterministic JSON text (sorted keys, two-space indent)."""
        obj = {
            "format": MANIFEST_FORMAT,
            "version": self.version,
            "total_records": self.total_records,
            "shards": [shard.to_json_obj() for shard in self.shards],
            "metadata": self.metadata,
        }
        return json.dumps(obj, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "LibraryManifest":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest is not valid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise ManifestError("manifest must be a JSON object")
        if obj.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"not a {MANIFEST_FORMAT} manifest (format={obj.get('format')!r})"
            )
        version = obj.get("version")
        if not isinstance(version, int):
            raise ManifestError("manifest version must be an integer")
        shards_obj = obj.get("shards")
        if not isinstance(shards_obj, list):
            raise ManifestError("manifest 'shards' must be a list")
        metadata = obj.get("metadata", {})
        if not isinstance(metadata, dict):
            raise ManifestError("manifest 'metadata' must be a JSON object")
        manifest = cls(
            shards=tuple(ShardEntry.from_json_obj(entry) for entry in shards_obj),
            metadata=metadata,
            version=version,
        )
        declared = obj.get("total_records")
        if declared is not None and declared != manifest.total_records:
            raise ManifestError(
                f"manifest claims {declared} records but shards sum to "
                f"{manifest.total_records}"
            )
        return manifest

    def save(self, path: PathLike) -> Path:
        """Write the manifest to *path* (a directory gets ``library.json``)."""
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "LibraryManifest":
        """Load a manifest from a file path or a library directory."""
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        if not path.is_file():
            raise ManifestError(f"no library manifest at {path}")
        return cls.from_json(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    # Construction from shard files
    # ------------------------------------------------------------------ #
    @classmethod
    def from_shards(
        cls,
        paths: Sequence[PathLike],
        metadata: Optional[Dict[str, object]] = None,
        root: Optional[PathLike] = None,
    ) -> "LibraryManifest":
        """Build a manifest by reading the footers of existing ``.zss`` shards.

        Shard names are recorded relative to *root* (default: the parent
        directory of the first shard); record ranges follow the order of
        *paths*.
        """
        from ..store.reader import ShardReader

        if not paths:
            raise ManifestError("from_shards needs at least one shard path")
        resolved = [Path(p) for p in paths]
        root = Path(root) if root is not None else resolved[0].parent
        entries: List[ShardEntry] = []
        start = 0
        for path in resolved:
            try:
                name = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError as exc:
                raise ManifestError(
                    f"shard {path} is not inside the library root {root}"
                ) from exc
            with ShardReader(path) as reader:
                entries.append(
                    ShardEntry(
                        name=name,
                        start=start,
                        records=len(reader),
                        blocks=reader.block_count,
                        records_per_block=reader.records_per_block,
                        file_bytes=path.stat().st_size,
                    )
                )
            start += entries[-1].records
        return cls(shards=tuple(entries), metadata=dict(metadata or {}))


def resolve_manifest_path(path: PathLike) -> Optional[Path]:
    """The manifest file a *path* refers to, or ``None`` if it is not one.

    Accepts the manifest file itself (any ``.json``) or a library directory
    containing a ``library.json``.
    """
    path = Path(path)
    if path.is_dir():
        candidate = path / MANIFEST_NAME
        return candidate if candidate.is_file() else None
    if path.suffix == ".json":
        return path
    return None


def is_packed_path(path: PathLike) -> bool:
    """Whether *path* is a packed layout: a library manifest/dir or a ``.zss``.

    The one dispatch rule shared by every consumer that distinguishes packed
    from flat corpora (screening, ``cli serve-bench``, ...).
    """
    from ..store.format import STORE_SUFFIX

    path = Path(path)
    return resolve_manifest_path(path) is not None or path.suffix == STORE_SUFFIX
