"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch a single base class at API boundaries.  Sub-hierarchies mirror the
package layout: SMILES parsing, dictionary construction, codec operation and
dataset generation each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class SmilesError(ReproError):
    """Base class for SMILES tokenization / parsing / validation errors."""


class TokenizationError(SmilesError):
    """Raised when a SMILES string cannot be split into tokens.

    Attributes
    ----------
    smiles:
        The offending input string.
    position:
        Zero-based character offset where tokenization failed.
    """

    def __init__(self, message: str, smiles: str = "", position: int = -1):
        super().__init__(message)
        self.smiles = smiles
        self.position = position


class ParseError(SmilesError):
    """Raised when a token stream cannot be assembled into a molecular graph."""

    def __init__(self, message: str, smiles: str = "", position: int = -1):
        super().__init__(message)
        self.smiles = smiles
        self.position = position


class ValidationError(SmilesError):
    """Raised when a structurally parsable SMILES violates a semantic rule."""


class RingNumberingError(SmilesError):
    """Raised when ring-bond identifiers cannot be paired or renumbered."""


class DictionaryError(ReproError):
    """Base class for dictionary construction and serialization errors."""


class SymbolSpaceExhaustedError(DictionaryError):
    """Raised when more dictionary entries are requested than code points exist."""


class DictionaryFormatError(DictionaryError):
    """Raised when a ``.dct`` file cannot be parsed."""


class DictionaryIntegrityError(DictionaryFormatError):
    """Raised when a ``.dct`` parses but its declared entry counts disagree
    with the parsed body (a truncated or spliced file).

    Attributes
    ----------
    source:
        The offending path (or ``None`` when parsing from a string).
    """

    def __init__(self, message: str, source: object = None):
        super().__init__(message)
        self.source = source


class DictionaryMismatchError(DictionaryError):
    """Raised when a dictionary's content hash disagrees with the identity a
    manifest or shard footer declares for it (serving a corpus with the
    wrong dictionary would silently decode garbage)."""


class CodecError(ReproError):
    """Base class for compression / decompression failures."""


class CompressionError(CodecError):
    """Raised when an input line cannot be compressed."""


class DecompressionError(CodecError):
    """Raised when a compressed line cannot be decoded with the dictionary."""


class RandomAccessError(CodecError):
    """Raised for out-of-range or malformed random-access requests."""


class StoreError(CodecError):
    """Base class for block-store (``.zss``) packing and reading failures."""


class StoreFormatError(StoreError):
    """Raised when a ``.zss`` container is malformed, truncated or corrupt."""


class BlockCorruptionError(StoreFormatError):
    """Raised when one block of a ``.zss`` shard fails its integrity check
    (CRC mismatch or short read) while the rest of the shard stays readable.

    Carrying the shard path and block index lets the serving layers
    *quarantine* exactly the damaged block — every record outside it keeps
    serving — and lets ``zsmiles fsck`` name what to repair.  Replica-aware
    clients treat it as retryable: corruption is replica-local, so another
    replica can usually serve the same range.

    Attributes
    ----------
    shard_path:
        Path of the damaged shard (string; ``""`` when unknown).
    block:
        Zero-based index of the damaged block (``-1`` when unknown).
    """

    def __init__(self, message: str, shard_path: object = None, block: int = -1):
        super().__init__(message)
        self.shard_path = str(shard_path) if shard_path is not None else ""
        self.block = block


class LibraryError(StoreError):
    """Base class for sharded corpus-library packing and serving failures."""


class ManifestError(LibraryError):
    """Raised when a ``library.json`` manifest is malformed or inconsistent."""


class ServerError(ReproError):
    """Base class for the HTTP serving front (:mod:`repro.server`)."""


class ProtocolError(ServerError):
    """Raised for malformed requests or responses on the serving wire (HTTP 400)."""


class ServerConnectionError(ServerError):
    """Raised when the transport to a corpus server fails (died mid-stream, refused).

    ``delivered`` counts records the failing call had already handed to the
    consumer before the transport died (only meaningful for range streams;
    ``0`` for unit requests).  Failover clients use it to resume a broken
    stream on another replica at the first undelivered record, and consumers
    that buffered the partial stream can trust the prefix they hold.
    """

    def __init__(self, message: str, delivered: int = 0):
        super().__init__(message)
        self.delivered = delivered


class ServerBusyError(ServerError):
    """Raised when a server (or fleet front) cannot take the request right now
    (HTTP 503).  Retryable: a replica-aware client should try another replica."""


class CurationError(ReproError):
    """Raised by the corpus-curation subsystem (ingest, sampling, repack)."""


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators and ``.smi`` I/O helpers."""


class ScreeningError(ReproError):
    """Raised by the virtual-screening pipeline substrate."""


class CampaignError(ReproError):
    """Raised by the generative GA screening-campaign driver
    (:mod:`repro.campaign`): bad configuration, corrupt or missing
    checkpoints, and unrecoverable generation-loop failures."""


class ParallelExecutionError(ReproError):
    """Raised when a parallel backend fails to complete a batch."""
