"""A fault-injecting TCP proxy for the serving tier: :class:`FaultyProxy`.

The proxy sits between a client and a real corpus server and injects
transport faults per a seeded
:class:`~repro.faults.schedule.ConnectionFaultPlan`: connection resets,
pre-response stalls, and mid-stream drops after a scripted number of
response bytes.  It speaks raw TCP — no HTTP awareness — so what the
client experiences is exactly what a flaky network or a dying peer
produces, and the typed-error contract of the clients
(:class:`~repro.errors.ServerConnectionError` et al.) is exercised for
real.

::

    plan = FaultSchedule(seed).connection_plan(connections=8, drops=2)
    with FaultyProxy(server.url, plan) as proxy:
        client = CorpusClient(proxy.url)
        ...   # two of the first eight connections die mid-stream
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Optional, Tuple

from ..errors import ServerError
from ..telemetry import metrics as _metrics
from .io import _injected_counter
from .schedule import ConnectionFault, ConnectionFaultPlan

_RELAY_CHUNK = 65536


def _parse_host_port(url: str) -> Tuple[str, int]:
    """``http://host:port`` / ``host:port`` → ``(host, port)``."""
    target = url
    for scheme in ("http://", "https://"):
        if target.startswith(scheme):
            target = target[len(scheme):]
            break
    target = target.rstrip("/")
    host, sep, port = target.rpartition(":")
    if not sep or not port.isdigit():
        raise ServerError(f"cannot parse proxy backend address from {url!r}")
    return host, int(port)


def _hard_close(conn: socket.socket) -> None:
    """Close with SO_LINGER 0 — an RST, not a graceful FIN."""
    try:
        conn.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass


class FaultyProxy:
    """Forward TCP connections to a backend, injecting scheduled faults.

    Parameters
    ----------
    backend:
        Backend address: an ``http://host:port`` URL or ``host:port``.
    plan:
        Per-connection fault plan; connections beyond the plan (or mapped
        to ``"pass"``) relay untouched.
    host:
        Listen address (loopback by default; port is always ephemeral).
    """

    def __init__(
        self,
        backend: str,
        plan: Optional[ConnectionFaultPlan] = None,
        host: str = "127.0.0.1",
    ):
        self.backend = _parse_host_port(backend)
        self.plan = plan if plan is not None else ConnectionFaultPlan()
        self.host = host
        self.port: Optional[int] = None
        self.connections_seen = 0
        self.faults_injected = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        if self.port is None:
            raise ServerError("FaultyProxy is not started")
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FaultyProxy":
        if self._listener is not None:
            raise ServerError("FaultyProxy already started")
        self._listener = socket.create_server((self.host, 0))
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faulty-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # The accept / relay machinery
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                ordinal = self.connections_seen
                self.connections_seen += 1
            _metrics.counter(
                "faults_connections_total",
                "Connections that passed through a FaultyProxy",
            ).inc()
            fault = self.plan.fault_for(ordinal)
            threading.Thread(
                target=self._handle,
                args=(conn, fault),
                name=f"faulty-proxy-conn-{ordinal}",
                daemon=True,
            ).start()

    def _handle(self, client: socket.socket, fault: Optional[ConnectionFault]) -> None:
        if fault is not None and fault.kind != "pass":
            with self._lock:
                self.faults_injected += 1
            _injected_counter().labels("proxy", fault.kind).inc()
        if fault is not None and fault.kind == "reset":
            _hard_close(client)
            return
        if fault is not None and fault.kind == "stall":
            # The client's request may already be in flight; stall before
            # even connecting to the backend, so nothing answers until the
            # stall elapses (or the client times out first).
            time.sleep(fault.arg)
        try:
            backend = socket.create_connection(self.backend, timeout=10.0)
        except OSError:
            _hard_close(client)
            return
        drop_after = int(fault.arg) if fault is not None and fault.kind == "drop" else None
        done = threading.Event()
        upstream = threading.Thread(
            target=self._relay,
            args=(client, backend, None, done),
            daemon=True,
        )
        upstream.start()
        # Response path runs inline so a drop can cut both sockets.
        self._relay(backend, client, drop_after, done)
        done.set()
        _hard_close(client)
        _hard_close(backend)
        upstream.join(timeout=5.0)

    @staticmethod
    def _relay(
        src: socket.socket,
        dst: socket.socket,
        drop_after: Optional[int],
        done: threading.Event,
    ) -> None:
        """Pump bytes src → dst; with *drop_after*, cut the stream there."""
        forwarded = 0
        src.settimeout(0.2)
        while not done.is_set():
            try:
                data = src.recv(_RELAY_CHUNK)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            if drop_after is not None and forwarded + len(data) > drop_after:
                data = data[: max(0, drop_after - forwarded)]
                if data:
                    try:
                        dst.sendall(data)
                    except OSError:
                        pass
                break
            try:
                dst.sendall(data)
            except OSError:
                break
            forwarded += len(data)
