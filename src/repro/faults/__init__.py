"""Deterministic fault injection for the storage and serving stack.

``repro.faults`` exists to *prove* the robustness story, not to be part of
it: every chaos/acceptance suite drives the real readers, servers and
clients through this harness, with every fault drawn from a seeded
schedule so a failing run replays byte-for-byte from its seed.

Three layers:

* :mod:`repro.faults.schedule` — the seeded planners.
  :class:`FaultSchedule` turns ``(seed, shard files)`` into a concrete,
  reproducible corruption plan (bit flips at chosen offsets, truncations)
  that :func:`apply_corruptions` writes onto *copies* of the shards;
  :class:`ReadFaultPlan` scripts per-read-call faults for the I/O layer;
  :class:`ConnectionFaultPlan` scripts per-connection faults for the
  proxy.
* :mod:`repro.faults.io` — :class:`FaultyFile`, an injectable file object
  wrapping ``open``/``read``/``seek`` that flips bits, short-reads,
  truncates and delays per its plan.  ``.zss`` readers accept open binary
  handles, so the faulty layer slots straight into
  :class:`~repro.store.reader.ShardReader` /
  :class:`~repro.store.reader.CorpusStore` with no store changes.
* :mod:`repro.faults.proxy` — :class:`FaultyProxy`, a TCP proxy in front
  of a real corpus server that injects connection resets, stalls and
  mid-stream drops, for exercising the client retry / failover paths.

Typical chaos-test shape::

    schedule = FaultSchedule(seed=1234)
    plan = schedule.plan_corruptions(shard_copies, flips=3, truncations=1)
    applied = apply_corruptions(plan)           # copies now corrupt
    report = fsck_path(damaged_library)         # every fault detected
    repair_path(damaged_library, replica)       # bytes restored

    with FaultyProxy(server.url, schedule.connection_plan(resets=2)) as proxy:
        client = FailoverCorpusClient([proxy.url, clean.url])
        client.slice(0, len(client))            # rides out the faults
"""

from .io import FaultyFile, open_faulty
from .proxy import FaultyProxy
from .schedule import (
    BitFlip,
    ConnectionFault,
    ConnectionFaultPlan,
    FaultSchedule,
    ReadFault,
    ReadFaultPlan,
    Truncation,
    apply_corruptions,
)

__all__ = [
    "BitFlip",
    "ConnectionFault",
    "ConnectionFaultPlan",
    "FaultSchedule",
    "FaultyFile",
    "FaultyProxy",
    "ReadFault",
    "ReadFaultPlan",
    "Truncation",
    "apply_corruptions",
    "open_faulty",
]
