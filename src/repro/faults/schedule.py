"""Seeded fault planning: the same seed always injects the same faults.

The planners never touch anything themselves — they return plain frozen
fault descriptions that :func:`apply_corruptions`, :class:`~repro.faults.io.FaultyFile`
and :class:`~repro.faults.proxy.FaultyProxy` execute.  Keeping planning
(pure, seeded) apart from execution (side-effectful) is what makes a chaos
run replayable: persist the seed, re-derive the identical plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError

PathLike = Union[str, Path]

#: Bytes at the head of a ``.zss`` shard the default corruption plan leaves
#: alone (the magic + version header); flipping those makes the whole shard
#: unopenable, which is a *different* failure mode than payload corruption.
HEADER_GUARD = 5


# ---------------------------------------------------------------------- #
# On-disk corruption plans (bit flips, truncations)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class BitFlip:
    """Flip one bit of one file: ``path[offset] ^= 1 << bit``."""

    path: str
    offset: int
    bit: int

    def describe(self) -> str:
        return f"flip {Path(self.path).name}@{self.offset} bit {self.bit}"


@dataclass(frozen=True)
class Truncation:
    """Cut a file down to ``size`` bytes (simulates a torn write)."""

    path: str
    size: int

    def describe(self) -> str:
        return f"truncate {Path(self.path).name} -> {self.size} bytes"


def apply_corruptions(plan: Sequence[Union[BitFlip, Truncation]]) -> List[str]:
    """Execute a corruption plan in place, returning human-readable labels.

    Only ever point this at *copies* of corpus files — the golden-fixture
    invariant forbids touching pinned bytes, and the chaos suites make
    their own tmp copies before calling in here.
    """
    applied: List[str] = []
    for fault in plan:
        path = Path(fault.path)
        if isinstance(fault, BitFlip):
            data = bytearray(path.read_bytes())
            if not 0 <= fault.offset < len(data):
                raise ReproError(
                    f"bit-flip offset {fault.offset} outside {path} "
                    f"({len(data)} bytes)"
                )
            data[fault.offset] ^= 1 << fault.bit
            path.write_bytes(bytes(data))
        elif isinstance(fault, Truncation):
            size = path.stat().st_size
            if fault.size >= size:
                raise ReproError(
                    f"truncation to {fault.size} does not shrink {path} ({size} bytes)"
                )
            with open(path, "r+b") as handle:
                handle.truncate(fault.size)
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown fault {fault!r}")
        applied.append(fault.describe())
    return applied


# ---------------------------------------------------------------------- #
# Per-read-call faults for the injectable I/O layer
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReadFault:
    """One scripted fault on the Nth ``read()`` call of a faulty file.

    kind:
        ``"flip"`` (xor the first byte of the result), ``"short"`` (return
        at most ``arg`` bytes of what was asked), ``"truncate"`` (pretend
        EOF: return ``b""``), or ``"delay"`` (sleep ``arg`` seconds, then
        read normally).
    """

    call: int
    kind: str
    arg: float = 0.0


class ReadFaultPlan:
    """Maps read-call ordinals to scripted :class:`ReadFault` events."""

    def __init__(self, faults: Sequence[ReadFault] = ()):
        self._by_call: Dict[int, ReadFault] = {}
        for fault in faults:
            if fault.kind not in ("flip", "short", "truncate", "delay"):
                raise ReproError(f"unknown read-fault kind {fault.kind!r}")
            self._by_call[fault.call] = fault

    def fault_for(self, call: int) -> Optional[ReadFault]:
        return self._by_call.get(call)

    def __len__(self) -> int:
        return len(self._by_call)


# ---------------------------------------------------------------------- #
# Per-connection faults for the TCP proxy
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConnectionFault:
    """One scripted fault on the Nth accepted proxy connection.

    kind:
        ``"reset"`` (close the client socket immediately, RST-ish),
        ``"stall"`` (sleep ``arg`` seconds before forwarding anything),
        ``"drop"`` (forward ``int(arg)`` response bytes, then cut the
        connection mid-stream), or ``"pass"`` (forward untouched).
    """

    connection: int
    kind: str
    arg: float = 0.0


class ConnectionFaultPlan:
    """Maps accepted-connection ordinals to :class:`ConnectionFault` events."""

    def __init__(self, faults: Sequence[ConnectionFault] = ()):
        self._by_connection: Dict[int, ConnectionFault] = {}
        for fault in faults:
            if fault.kind not in ("reset", "stall", "drop", "pass"):
                raise ReproError(f"unknown connection-fault kind {fault.kind!r}")
            self._by_connection[fault.connection] = fault

    def fault_for(self, connection: int) -> Optional[ConnectionFault]:
        return self._by_connection.get(connection)

    def __len__(self) -> int:
        return len(self._by_connection)


# ---------------------------------------------------------------------- #
# The seeded planner
# ---------------------------------------------------------------------- #
class FaultSchedule:
    """Derives every fault plan of one chaos run from a single seed.

    Each planner call consumes the schedule's RNG in a documented order, so
    a chaos test that records nothing but ``seed`` replays identically.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    # -- on-disk corruption ------------------------------------------- #
    def plan_corruptions(
        self,
        paths: Sequence[PathLike],
        flips: int = 1,
        truncations: int = 0,
        guard_head: int = HEADER_GUARD,
    ) -> List[Union[BitFlip, Truncation]]:
        """Seeded bit flips and truncations spread over *paths*.

        Flip offsets avoid the first *guard_head* bytes (the shard header)
        so the injected faults model payload/footer rot rather than
        unopenable files; truncations cut off at least the trailer.  Files
        are chosen round-robin-ish by the RNG; every planned fault names a
        concrete path + offset, so the plan is storable and replayable.
        """
        paths = [str(Path(p)) for p in paths]
        if not paths:
            raise ReproError("plan_corruptions needs at least one path")
        sizes = {p: Path(p).stat().st_size for p in paths}
        plan: List[Union[BitFlip, Truncation]] = []
        for _ in range(flips):
            path = self._rng.choice(paths)
            size = sizes[path]
            if size <= guard_head:
                raise ReproError(f"{path} too small to corrupt past its header")
            offset = self._rng.randrange(guard_head, size)
            plan.append(BitFlip(path=path, offset=offset, bit=self._rng.randrange(8)))
        for _ in range(truncations):
            path = self._rng.choice(paths)
            size = sizes[path]
            if size <= guard_head + 1:
                raise ReproError(f"{path} too small to truncate meaningfully")
            cut = self._rng.randrange(guard_head + 1, size)
            plan.append(Truncation(path=path, size=cut))
            sizes[path] = cut
        return plan

    # -- injectable file I/O ------------------------------------------ #
    def read_plan(
        self,
        calls: int,
        flips: int = 0,
        shorts: int = 0,
        truncates: int = 0,
        delays: int = 0,
        delay_seconds: float = 0.01,
    ) -> ReadFaultPlan:
        """A per-read-call fault plan over the first *calls* read ordinals."""
        wanted = flips + shorts + truncates + delays
        if wanted > calls:
            raise ReproError(
                f"cannot place {wanted} faults in {calls} read calls"
            )
        ordinals = self._rng.sample(range(calls), wanted)
        kinds = (
            ["flip"] * flips + ["short"] * shorts
            + ["truncate"] * truncates + ["delay"] * delays
        )
        faults = []
        for ordinal, kind in zip(ordinals, kinds):
            arg = delay_seconds if kind == "delay" else (
                1.0 if kind == "short" else 0.0
            )
            faults.append(ReadFault(call=ordinal, kind=kind, arg=arg))
        return ReadFaultPlan(faults)

    # -- network ------------------------------------------------------- #
    def connection_plan(
        self,
        connections: int,
        resets: int = 0,
        stalls: int = 0,
        drops: int = 0,
        stall_seconds: float = 0.2,
        drop_after_bytes: int = 64,
    ) -> ConnectionFaultPlan:
        """A per-connection fault plan over the first *connections* accepts."""
        wanted = resets + stalls + drops
        if wanted > connections:
            raise ReproError(
                f"cannot place {wanted} faults in {connections} connections"
            )
        ordinals = self._rng.sample(range(connections), wanted)
        kinds = ["reset"] * resets + ["stall"] * stalls + ["drop"] * drops
        faults = []
        for ordinal, kind in zip(ordinals, kinds):
            if kind == "stall":
                arg: float = stall_seconds
            elif kind == "drop":
                arg = float(drop_after_bytes)
            else:
                arg = 0.0
            faults.append(ConnectionFault(connection=ordinal, kind=kind, arg=arg))
        return ConnectionFaultPlan(faults)
