"""The injectable file-I/O fault layer: :class:`FaultyFile`.

``.zss`` readers accept any open binary, seekable file object, so the fault
layer is just a file wrapper — no store code knows it exists::

    plan = FaultSchedule(seed).read_plan(calls=50, flips=1)
    with ShardReader(open_faulty(shard_path, plan)) as reader:
        ...   # the flipped read surfaces as BlockCorruptionError

Faults trigger on read-call *ordinals* (0-based count of ``read`` calls on
the wrapper), which the seeded :class:`~repro.faults.schedule.ReadFaultPlan`
chose up front — rerunning with the same seed and the same access pattern
replays the same faults on the same calls.
"""

from __future__ import annotations

import io
import time
from pathlib import Path
from typing import Optional, Union

from ..telemetry import metrics as _metrics
from .schedule import ReadFaultPlan

PathLike = Union[str, Path]


def _injected_counter():
    """``faults_injected_total{layer,kind}`` on the current global registry."""
    return _metrics.counter(
        "faults_injected_total",
        "Faults injected by the chaos layer, by layer and kind",
        labels=("layer", "kind"),
    )


class FaultyFile(io.RawIOBase):
    """A read-only binary file wrapper that injects scheduled faults.

    Implements the slice of the file protocol the store readers use —
    ``read``, ``seek``, ``tell``, ``close``, ``seekable``/``readable`` —
    plus counters (``read_calls``, ``faults_injected``) the tests assert.

    Fault kinds (see :class:`~repro.faults.schedule.ReadFault`):

    * ``flip`` — XOR the first byte of the returned data with 0xFF.
    * ``short`` — return at most 1 byte of what was asked (callers that
      don't loop see a short read).
    * ``truncate`` — return ``b""`` (premature EOF).
    * ``delay`` — sleep, then read normally (models a slow disk).
    """

    def __init__(self, source: PathLike, plan: Optional[ReadFaultPlan] = None):
        super().__init__()
        self.path = Path(source)
        self._inner = open(self.path, "rb")
        self.plan = plan if plan is not None else ReadFaultPlan()
        self.read_calls = 0
        self.faults_injected = 0

    # -- file protocol -------------------------------------------------- #
    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        return self._inner.tell()

    def read(self, size: int = -1) -> bytes:
        call = self.read_calls
        self.read_calls += 1
        fault = self.plan.fault_for(call)
        if fault is None:
            return self._inner.read(size)
        self.faults_injected += 1
        _injected_counter().labels("file", fault.kind).inc()
        if fault.kind == "delay":
            time.sleep(fault.arg)
            return self._inner.read(size)
        if fault.kind == "truncate":
            # Premature EOF: advance nothing, hand back nothing.
            return b""
        if fault.kind == "short":
            limit = max(1, int(fault.arg))
            if size is None or size < 0 or size > limit:
                size = limit
            return self._inner.read(size)
        # "flip": real bytes with the first one damaged.
        data = bytearray(self._inner.read(size))
        if data:
            data[0] ^= 0xFF
        return bytes(data)

    def readinto(self, buffer) -> int:  # pragma: no cover - protocol glue
        data = self.read(len(buffer))
        buffer[: len(data)] = data
        return len(data)

    def close(self) -> None:
        if not self.closed:
            self._inner.close()
        super().close()

    # The wrapper deliberately hides the descriptor: an mmap over the real
    # fd would bypass the fault layer and silently test nothing.
    def fileno(self) -> int:
        raise OSError("FaultyFile exposes no file descriptor (mmap would bypass faults)")


def open_faulty(source: PathLike, plan: Optional[ReadFaultPlan] = None) -> FaultyFile:
    """Open *source* read-only behind the fault-injection layer."""
    return FaultyFile(source, plan)
