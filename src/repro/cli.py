"""``zsmiles`` command-line interface.

Mirrors the paper's ZSMILES executable plus the extra plumbing a library user
needs:

* ``zsmiles train``       — train a dictionary from a ``.smi`` file and save it as ``.dct``.
* ``zsmiles compress``    — compress a ``.smi`` file to ``.zsmi`` with a trained dictionary
  (``--backend {serial,kernel,process,auto}`` / ``--jobs N`` select the execution
  backend; ``auto`` routes small batches through the flat-array kernel and large
  ones onto the process pool, whose workers also run the kernel).
* ``zsmiles decompress``  — decompress a ``.zsmi`` file back to ``.smi``.
* ``zsmiles index``       — build the random-access line index of a data file.
* ``zsmiles get``         — fetch single records by line number through the index.
* ``zsmiles pack``        — pack a ``.smi`` file into a block-compressed ``.zss`` store,
  or — with ``--shards N`` — into a sharded library (``library.json`` + N shards;
  blocks compressed through the engine; ``--backend`` / ``--jobs`` parallelize packing,
  ``--shard-jobs N`` packs whole shards concurrently across processes).
* ``zsmiles compose``     — concatenate packed libraries into one ``library.json``
  without repacking a single shard (manifest-level composition).
* ``zsmiles unpack``      — expand a ``.zss`` store or a sharded library back to ``.smi``.
* ``zsmiles query``       — serve individual records out of a ``.zss`` store or library,
  decoding only the blocks touched (``--cache-blocks`` / ``--mmap`` tune serving;
  ``--verbose`` reports block-cache hit/miss counters).
* ``zsmiles fsck``        — scrub a packed corpus (``repro.store.fsck``): verify footers,
  every block CRC, manifest↔footer agreement and dictionary identities;
  ``--repair`` restores damaged shards from a healthy ``--replica`` (byte-identical)
  or re-packs them from the ``--source`` corpus (content-identical).
* ``zsmiles serve``       — serve a packed corpus over HTTP (``repro.server``): single
  records, batches and chunked range streams out of an async reader pool, with
  ``/stats`` + ``/healthz`` and graceful shutdown on SIGINT/SIGTERM.
* ``zsmiles serve-bench`` — measure single-get / batched-get serving latency of any
  corpus layout (flat, ``.zss``, sharded library, mmap, async pool); ``--json PATH``
  also writes the measurements machine-readably.
* ``zsmiles stats``       — report the compression ratio a dictionary achieves on a file.
* ``zsmiles generate``    — emit one of the synthetic datasets (for demos / tests).
* ``zsmiles experiment``  — regenerate one of the paper's tables / figures
  (``experiment table2 --via repack`` drives the matrix through real library
  re-packs instead of in-memory evaluation).
* ``zsmiles ingest``      — stream a raw SMILES dump through the curation pipeline
  (filters + dedup, bounded memory) into a clean ``.smi`` corpus.
* ``zsmiles train-dict``  — single-pass curation + bounded-sample dictionary
  training, pinning name/version/content-hash identity into the ``.dct``.
* ``zsmiles repack``      — migrate a packed library to a new dictionary
  (``repro.curation.repack``): decompress with the old, recompress with the new,
  ``--shard-jobs`` parallel, source untouched until the new manifest validates.
* ``zsmiles campaign``    — generative GA screening campaigns (``repro.campaign``):
  ``run`` a checkpointed campaign against any corpus tier (local library or
  ``http://`` replica list), ``resume`` after a kill to byte-identical results,
  ``status`` the per-generation counters, ``top-hits`` the best records.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .core.random_access import LineIndex, RandomAccessReader
from .core.streaming import SMI_SUFFIX, write_lines
from .datasets import exscalate, gdb17, mediate, mixed
from .datasets.io import read_smiles, write_smi
from .dictionary.prepopulation import PrePopulation
from .engine import BACKEND_CHOICES, ZSmilesEngine
from .library import (
    DEFAULT_POOL_SIZE,
    AsyncCorpusLibrary,
    CorpusLibrary,
    compose_libraries,
    is_packed_path,
    pack_library_file,
    resolve_manifest_path,
)
from .server.app import DEFAULT_HOST as SERVER_DEFAULT_HOST
from .server.app import DEFAULT_PORT as SERVER_DEFAULT_PORT
from .store import DEFAULT_CACHE_BLOCKS, CorpusStore, RecordReader, open_reader, pack_file
from .store.writer import DEFAULT_RECORDS_PER_BLOCK
from .experiments import (
    ExperimentScale,
    run_figure4,
    run_figure5,
    run_summary,
    run_table1,
    run_table2,
)

_DATASET_GENERATORS = {
    "gdb17": gdb17.generate,
    "mediate": mediate.generate,
    "exscalate": exscalate.generate,
    "mixed": mixed.generate,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``zsmiles`` entry point."""
    parser = argparse.ArgumentParser(
        prog="zsmiles",
        description="ZSMILES: dictionary-based, random-access SMILES compression.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a dictionary from a .smi file")
    train.add_argument("input", type=Path, help="training .smi file")
    train.add_argument("-o", "--output", type=Path, required=True, help="output .dct path")
    train.add_argument("--lmin", type=int, default=2)
    train.add_argument("--lmax", type=int, default=8)
    train.add_argument("--max-entries", type=int, default=None)
    train.add_argument(
        "--prepopulation", default="smiles", choices=["smiles", "printable", "none"]
    )
    train.add_argument("--no-preprocessing", action="store_true",
                       help="disable ring-identifier renumbering")

    compress = sub.add_parser("compress", help="compress a .smi file to .zsmi")
    compress.add_argument("input", type=Path)
    compress.add_argument("-d", "--dictionary", type=Path, required=True)
    compress.add_argument("-o", "--output", type=Path, default=None)
    compress.add_argument("--no-preprocessing", action="store_true")
    compress.add_argument("--backend", choices=BACKEND_CHOICES, default="auto",
                          help="execution backend (auto picks the process pool "
                               "for large batches)")
    compress.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes for the process backend "
                               "(default: CPU count)")

    decompress = sub.add_parser("decompress", help="decompress a .zsmi file to .smi")
    decompress.add_argument("input", type=Path)
    decompress.add_argument("-d", "--dictionary", type=Path, required=True)
    decompress.add_argument("-o", "--output", type=Path, default=None)
    decompress.add_argument("--backend", choices=BACKEND_CHOICES, default="auto",
                            help="execution backend")
    decompress.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes for the process backend")

    index = sub.add_parser("index", help="build a random-access line index")
    index.add_argument("input", type=Path)
    index.add_argument("-o", "--output", type=Path, default=None)

    get = sub.add_parser("get", help="fetch records by line number (0-based)")
    get.add_argument("input", type=Path)
    get.add_argument("lines", type=int, nargs="+")
    get.add_argument("-d", "--dictionary", type=Path, default=None,
                     help="decompress records with this dictionary")
    get.add_argument("--index", type=Path, default=None, help="pre-built .zsx index")

    pack = sub.add_parser("pack", help="pack a .smi file into a block-compressed .zss store "
                                       "or (with --shards) a sharded library")
    pack.add_argument("input", type=Path)
    pack.add_argument("-d", "--dictionary", type=Path, required=True)
    pack.add_argument("-o", "--output", type=Path, default=None,
                      help="output .zss path (default: input with .zss suffix); with "
                           "--shards, the library directory (default: input with .library)")
    pack.add_argument("--shards", type=int, default=None, metavar="N",
                      help="pack into a sharded library of N .zss shards plus library.json")
    pack.add_argument("--block-size", type=int, default=DEFAULT_RECORDS_PER_BLOCK,
                      metavar="N", help="records per block (the random-access granularity)")
    pack.add_argument("--no-preprocessing", action="store_true")
    pack.add_argument("--no-embed-dictionary", action="store_true",
                      help="do not embed the dictionary in the store footer")
    pack.add_argument("--backend", choices=BACKEND_CHOICES, default="auto",
                      help="execution backend for block packing")
    pack.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes for the process backend")
    pack.add_argument("--shard-jobs", type=int, default=None, metavar="N",
                      help="with --shards: pack whole shards concurrently across "
                           "N processes (byte-identical to sequential packing)")

    compose = sub.add_parser(
        "compose",
        help="concatenate packed libraries into one library.json without repacking",
    )
    compose.add_argument("sources", type=Path, nargs="+",
                         help="source libraries in order: directories, library.json "
                              "manifests or bare .zss shards")
    compose.add_argument("-o", "--output", type=Path, required=True,
                         help="composed library directory (or explicit .json path); "
                              "must be a common ancestor of every source shard")

    unpack = sub.add_parser("unpack", help="expand a .zss store or sharded library "
                                           "back to a .smi file")
    unpack.add_argument("input", type=Path,
                        help=".zss store, library directory or library.json manifest")
    unpack.add_argument("-o", "--output", type=Path, default=None,
                        help="output .smi path (default: input with .smi suffix)")
    unpack.add_argument("-d", "--dictionary", type=Path, default=None,
                        help="dictionary override (default: the store's embedded one)")

    query = sub.add_parser("query", help="fetch records from a .zss store or sharded "
                                         "library by index (0-based)")
    query.add_argument("input", type=Path,
                       help=".zss store, library directory or library.json manifest")
    query.add_argument("indices", type=int, nargs="+")
    query.add_argument("-d", "--dictionary", type=Path, default=None,
                       help="dictionary override (default: the store's embedded one)")
    query.add_argument("--raw", action="store_true",
                       help="print stored (compressed) records without decoding")
    query.add_argument("--cache-blocks", type=int, default=DEFAULT_CACHE_BLOCKS,
                       metavar="N", help="decoded blocks kept in the LRU cache "
                                         f"(default: {DEFAULT_CACHE_BLOCKS})")
    query.add_argument("--mmap", action="store_true",
                       help="serve block reads from a read-only memory map")
    query.add_argument("-v", "--verbose", action="store_true",
                       help="report block-cache hit/miss counters on stderr")

    fsck = sub.add_parser(
        "fsck",
        help="scrub a packed corpus: footers, block CRCs, manifest agreement "
             "and dictionary identities; optionally repair damaged shards",
    )
    fsck.add_argument("input", type=Path,
                      help=".zss store, library directory or library.json manifest")
    fsck.add_argument("--repair", action="store_true",
                      help="restore damaged shards from --replica / --source")
    fsck.add_argument("--replica", type=Path, default=None,
                      help="healthy replica of the same layout "
                           "(verbatim byte copy, verified clean first)")
    fsck.add_argument("--source", type=Path, default=None,
                      help="original .smi source corpus (content-identical "
                           "re-pack of the damaged record range)")
    fsck.add_argument("--json", action="store_true",
                      help="print the machine-readable report instead of the summary")

    serve = sub.add_parser(
        "serve",
        help="serve a packed corpus (.zss / library) over HTTP",
    )
    serve.add_argument("input", type=Path,
                       help=".zss store, library directory or library.json manifest")
    serve.add_argument("-d", "--dictionary", type=Path, default=None,
                       help="dictionary override (default: the store's embedded one)")
    serve.add_argument("--host", default=SERVER_DEFAULT_HOST,
                       help=f"bind address (default: {SERVER_DEFAULT_HOST})")
    serve.add_argument("--port", type=int, default=SERVER_DEFAULT_PORT,
                       help=f"bind port, 0 = ephemeral (default: {SERVER_DEFAULT_PORT})")
    serve.add_argument("--readers", type=int, default=DEFAULT_POOL_SIZE, metavar="N",
                       help="async reader-pool size = max concurrent block decodes "
                            f"(default: {DEFAULT_POOL_SIZE})")
    serve.add_argument("--cache-blocks", type=int, default=DEFAULT_CACHE_BLOCKS,
                       metavar="N", help="shared LRU budget of decoded blocks "
                                         f"(default: {DEFAULT_CACHE_BLOCKS})")
    serve.add_argument("--mmap", action="store_true",
                       help="serve block reads from read-only memory maps")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes behind one port (default 1: "
                            "in-process server; >1 pre-forks a fleet via "
                            "SO_REUSEPORT or a round-robin accept proxy)")
    serve.add_argument("--access-log", default=None, metavar="PATH",
                       help="append one JSON line per request to PATH "
                            "('-' = stdout; off by default)")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="measure single-get and batched-get serving latency of a corpus",
    )
    serve_bench.add_argument("input", type=Path,
                             help="flat file, .zss store, library directory or manifest")
    serve_bench.add_argument("-d", "--dictionary", type=Path, default=None,
                             help="dictionary for flat compressed files / override")
    serve_bench.add_argument("--requests", type=int, default=256, metavar="N",
                             help="random single-get requests to time (default: 256)")
    serve_bench.add_argument("--batch-size", type=int, default=64, metavar="B",
                             help="indices per get_many batch (default: 64)")
    serve_bench.add_argument("--pool-size", type=int, default=4, metavar="P",
                             help="async reader-pool size (default: 4)")
    serve_bench.add_argument("--cache-blocks", type=int, default=DEFAULT_CACHE_BLOCKS,
                             metavar="N", help="LRU cache capacity for packed layouts")
    serve_bench.add_argument("--mmap", action="store_true",
                             help="serve packed block reads from a memory map")
    serve_bench.add_argument("--seed", type=int, default=0,
                             help="RNG seed for the request index sequence")
    serve_bench.add_argument("--json", type=Path, default=None, metavar="PATH",
                             help="also write the measurements as machine-readable "
                                  "JSON (requests/sec and us/request per mode)")

    stats = sub.add_parser(
        "stats",
        help="compression ratio of a dictionary on a file, or live telemetry "
             "of a running server (stats URL [--watch N])",
    )
    stats.add_argument("input", type=str,
                       help="input file — or a server URL for live registry stats")
    stats.add_argument("-d", "--dictionary", type=Path, default=None,
                       help="dictionary (required in file mode)")
    stats.add_argument("--no-preprocessing", action="store_true")
    stats.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                       help="URL mode: re-scrape every N seconds and render the "
                            "counter diff until interrupted")
    stats.add_argument("--json", action="store_true",
                       help="URL mode: print the raw metrics snapshot as JSON")

    generate = sub.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=sorted(_DATASET_GENERATORS))
    generate.add_argument("count", type=int)
    generate.add_argument("-o", "--output", type=Path, required=True)
    generate.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument(
        "name", choices=["table1", "table2", "figure4", "figure5", "summary"]
    )
    experiment.add_argument("--scale", choices=["smoke", "benchmark", "paper"],
                            default="benchmark")
    experiment.add_argument("--via", choices=["engine", "repack"], default="engine",
                            help="table2 only: evaluate dictionaries in memory "
                                 "(engine) or through real library re-packs (repack)")

    ingest = sub.add_parser(
        "ingest",
        help="stream a raw SMILES dump through filters + dedup into a clean .smi",
    )
    ingest.add_argument("input", type=Path, help="raw line-oriented input file")
    ingest.add_argument("-o", "--output", type=Path, required=True,
                        help="curated .smi output path")
    _add_curation_options(ingest)
    ingest.add_argument("--stats-json", type=Path, default=None, metavar="PATH",
                        help="also write the per-stage accept/reject counters as JSON")

    train_dict = sub.add_parser(
        "train-dict",
        help="curate a stream, sample it and train a pinned dictionary in one pass",
    )
    train_dict.add_argument("input", type=Path, help="raw line-oriented input file")
    train_dict.add_argument("-o", "--output", type=Path, required=True,
                            help="output .dct path")
    _add_curation_options(train_dict)
    train_dict.add_argument("--sample", type=int, default=100_000, metavar="N",
                            help="bounded training-sample size (default: 100000)")
    train_dict.add_argument("--sampler", choices=["reservoir", "head"],
                            default="reservoir",
                            help="reservoir = uniform over the whole stream; "
                                 "head = first N records")
    train_dict.add_argument("--seed", type=int, default=0,
                            help="reservoir sampling seed")
    train_dict.add_argument("--name", default=None,
                            help="dictionary name pinned into the .dct metadata")
    train_dict.add_argument("--version", dest="dict_version", default=None,
                            help="dictionary version pinned into the .dct metadata")
    train_dict.add_argument("--lmin", type=int, default=2)
    train_dict.add_argument("--lmax", type=int, default=8)
    train_dict.add_argument("--max-entries", type=int, default=None)
    train_dict.add_argument(
        "--prepopulation", default="smiles", choices=["smiles", "printable", "none"]
    )
    train_dict.add_argument("--no-preprocessing", action="store_true",
                            help="disable ring-identifier renumbering")

    repack = sub.add_parser(
        "repack",
        help="re-pack a library with a new dictionary (source left untouched)",
    )
    repack.add_argument("input", type=Path,
                        help="source library: directory, library.json or .zss")
    repack.add_argument("-o", "--output", type=Path, required=True,
                        help="destination library directory (must differ from source)")
    repack.add_argument("-d", "--dictionary", type=Path, required=True,
                        help="the new dictionary (.dct)")
    repack.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard count of the new library (default: mirror source)")
    repack.add_argument("--block-size", type=int, default=None, metavar="N",
                        help="records per block (default: mirror source)")
    repack.add_argument("--shard-jobs", type=int, default=None, metavar="N",
                        help="pack whole shards concurrently across N processes")
    repack.add_argument("--no-verify", action="store_true",
                        help="skip the full readback comparison after packing")

    campaign = sub.add_parser(
        "campaign",
        help="generative GA screening campaigns over any corpus tier "
             "(local library or http:// replica list)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    camp_run = campaign_sub.add_parser(
        "run", help="start a new campaign and run it to its generation target"
    )
    camp_run.add_argument("source",
                          help="seed corpus: library dir, library.json, .zss, "
                               ".smi/.zsmi, http:// URL or comma-separated replicas")
    camp_run.add_argument("workdir", type=Path, help="campaign working directory")
    camp_run.add_argument("--population", type=int, default=64, metavar="N",
                          help="survivors per generation (default 64)")
    camp_run.add_argument("--generations", type=int, default=5, metavar="N",
                          help="evolution generations after the seed draw (default 5)")
    camp_run.add_argument("--seed", type=int, default=0, help="master campaign seed")
    camp_run.add_argument("--pocket", default="3CLpro",
                          help="scoring pocket name (default 3CLpro)")
    camp_run.add_argument("--crossover-rate", type=float, default=0.3)
    camp_run.add_argument("--immigrants", type=int, default=0, metavar="N",
                          help="fresh records sampled from the source each generation")
    camp_run.add_argument("--max-heavy-atoms", type=int, default=60, metavar="N")
    camp_run.add_argument("--score-jobs", type=int, default=4, metavar="N",
                          help="scoring thread-pool width (output-invariant)")
    camp_run.add_argument("--throttle", type=float, default=0.0, metavar="SECONDS",
                          help="sleep per generation before packing (pacing for "
                               "campaigns sharing a serving tier)")

    camp_resume = campaign_sub.add_parser(
        "resume", help="resume a checkpointed campaign to its generation target"
    )
    camp_resume.add_argument("workdir", type=Path)
    camp_resume.add_argument("--generations", type=int, default=None, metavar="N",
                             help="override (e.g. extend) the generation target")
    camp_resume.add_argument("--source", default=None,
                             help="replace the corpus source (e.g. new replica list)")

    camp_status = campaign_sub.add_parser(
        "status", help="print a campaign's checkpoint state and counters"
    )
    camp_status.add_argument("workdir", type=Path)

    camp_hits = campaign_sub.add_parser(
        "top-hits", help="best distinct records across the whole campaign"
    )
    camp_hits.add_argument("workdir", type=Path)
    camp_hits.add_argument("-n", "--count", type=int, default=16)

    return parser


def _add_curation_options(parser: argparse.ArgumentParser) -> None:
    """The shared ingest-pipeline flags of ``ingest`` and ``train-dict``."""
    parser.add_argument("--column", type=int, default=None, metavar="N",
                        help="take column N (0-based, whitespace-split) of each row")
    parser.add_argument("--canonicalize", action="store_true",
                        help="canonicalise through the SMILES parser/writer "
                             "(rejects unparsable records)")
    parser.add_argument("--no-largest-fragment", action="store_true",
                        help="keep multi-fragment records whole instead of "
                             "selecting the largest '.'-separated fragment")
    parser.add_argument("--drop-charged", action="store_true",
                        help="reject records containing charged bracket atoms")
    parser.add_argument("--min-length", type=int, default=1, metavar="N")
    parser.add_argument("--max-length", type=int, default=None, metavar="N")
    parser.add_argument("--min-carbons", type=int, default=0, metavar="N",
                        help="reject records with fewer than N carbon atoms")
    parser.add_argument("--no-dedup", action="store_true",
                        help="keep duplicate records")


def _load_engine(
    dictionary: Path,
    preprocessing: bool = True,
    backend: str = "auto",
    jobs: Optional[int] = None,
) -> ZSmilesEngine:
    return ZSmilesEngine.from_dictionary(
        dictionary, preprocessing=preprocessing, backend=backend, jobs=jobs
    )


def _scale_from_name(name: str) -> ExperimentScale:
    return {
        "smoke": ExperimentScale.smoke,
        "benchmark": ExperimentScale.benchmark,
        "paper": ExperimentScale.paper,
    }[name]()


def _cmd_train(args: argparse.Namespace) -> int:
    corpus = read_smiles(args.input)
    engine = ZSmilesEngine.train(
        corpus,
        preprocessing=not args.no_preprocessing,
        prepopulation=PrePopulation.from_name(args.prepopulation),
        lmin=args.lmin,
        lmax=args.lmax,
        max_entries=args.max_entries,
    )
    engine.save_dictionary(args.output)
    report = engine.training_report
    if report is not None:
        print(report.summary())
    print(f"dictionary written to {args.output}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    with _load_engine(
        args.dictionary,
        preprocessing=not args.no_preprocessing,
        backend=args.backend,
        jobs=args.jobs,
    ) as engine:
        stats = engine.compress_file(args.input, args.output)
    print(
        f"compressed {stats.lines} records: {stats.input_bytes} -> {stats.output_bytes} bytes "
        f"(ratio {stats.ratio:.3f}) -> {stats.output_path}"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with _load_engine(args.dictionary, backend=args.backend, jobs=args.jobs) as engine:
        stats = engine.decompress_file(args.input, args.output)
    print(
        f"decompressed {stats.lines} records: {stats.input_bytes} -> {stats.output_bytes} bytes "
        f"-> {stats.output_path}"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    index = LineIndex.build(args.input)
    output = args.output or LineIndex.default_path(args.input)
    index.save(output)
    print(f"indexed {index.line_count} records -> {output}")
    return 0


def _cmd_get(args: argparse.Namespace) -> int:
    codec = _load_engine(args.dictionary).codec if args.dictionary else None
    index = LineIndex.load(args.index) if args.index else None
    reader = RandomAccessReader(args.input, index=index, codec=codec)
    with reader:
        for line_no in args.lines:
            print(reader.line(line_no))
    return 0


def _open_corpus(
    path: Path,
    codec=None,
    cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    use_mmap: bool = False,
):
    """Open a packed corpus: a library (directory / manifest) or one ``.zss``."""
    if resolve_manifest_path(path) is not None:
        return CorpusLibrary.open(
            path, codec=codec, cache_blocks=cache_blocks, use_mmap=use_mmap
        )
    return CorpusStore(path, codec=codec, cache_blocks=cache_blocks, use_mmap=use_mmap)


def _cmd_pack(args: argparse.Namespace) -> int:
    if args.block_size < 1:
        print("error: --block-size must be >= 1", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shard_jobs is not None:
        if args.shard_jobs < 1:
            print("error: --shard-jobs must be >= 1", file=sys.stderr)
            return 2
        if args.shards is None:
            print("error: --shard-jobs requires --shards", file=sys.stderr)
            return 2
    with _load_engine(
        args.dictionary,
        preprocessing=not args.no_preprocessing,
        backend=args.backend,
        jobs=args.jobs,
    ) as engine:
        if args.shards is not None:
            library = pack_library_file(
                args.input,
                args.output,
                engine=engine,
                shards=args.shards,
                records_per_block=args.block_size,
                embed_dictionary=not args.no_embed_dictionary,
                shard_jobs=args.shard_jobs,
            )
            print(
                f"packed {library.records} records into {library.shard_count} shards "
                f"/ {library.blocks} blocks ({args.block_size}/block): "
                f"{library.original_bytes} -> {library.payload_bytes} payload bytes "
                f"(ratio {library.ratio:.3f}), {library.file_bytes} bytes on disk "
                f"-> {library.manifest_path}"
            )
            return 0
        info = pack_file(
            args.input,
            args.output,
            engine=engine,
            records_per_block=args.block_size,
            embed_dictionary=not args.no_embed_dictionary,
        )
    print(
        f"packed {info.records} records into {info.blocks} blocks "
        f"({info.records_per_block}/block): {info.original_bytes} -> "
        f"{info.payload_bytes} payload bytes (ratio {info.ratio:.3f}), "
        f"{info.file_bytes} bytes on disk -> {info.path}"
    )
    return 0


def _cmd_unpack(args: argparse.Namespace) -> int:
    codec = _load_engine(args.dictionary).codec if args.dictionary else None
    output = args.output or args.input.with_suffix(SMI_SUFFIX)
    with _open_corpus(args.input, codec=codec) as store:
        count = write_lines(output, store.iter_all())
    print(f"unpacked {count} records -> {output}")
    return 0


def _corpus_dictionary_identity(store):
    """The dictionary identity of an opened corpus, or ``None``.

    Libraries answer from their manifest; a bare ``.zss`` store answers
    from the dictionary embedded in its first shard footer.
    """
    from .dictionary.serialization import DictionaryIdentity, loads
    from .store import DICTIONARY_META_KEY

    if hasattr(store, "dictionary_identity"):
        identity = store.dictionary_identity()
        if identity is not None:
            return identity
    shards = getattr(store, "shards", None)
    if shards:
        text = shards[0].metadata.get(DICTIONARY_META_KEY)
        if isinstance(text, str) and text:
            return DictionaryIdentity.of(loads(text))
    return None


def _cmd_query(args: argparse.Namespace) -> int:
    if args.cache_blocks < 1:
        print("error: --cache-blocks must be >= 1", file=sys.stderr)
        return 2
    codec = _load_engine(args.dictionary).codec if args.dictionary else None
    with _open_corpus(
        args.input,
        codec=codec,
        cache_blocks=args.cache_blocks,
        use_mmap=args.mmap,
    ) as store:
        for index in args.indices:
            print(store.get_raw(index) if args.raw else store.get(index))
        if args.verbose:
            identity = _corpus_dictionary_identity(store)
            if identity is not None:
                print(f"dictionary: {identity.label()}", file=sys.stderr)
            stats = (
                store.cache_stats()
                if hasattr(store, "cache_stats")
                # CorpusStore: per-shard private caches; aggregate them.
                else {
                    key: sum(shard.cache_stats()[key] for shard in store.shards)
                    for key in ("hits", "misses", "capacity", "cached_blocks")
                }
            )
            lookups = stats["hits"] + stats["misses"]
            hit_rate = stats["hits"] / lookups if lookups else 0.0
            print(
                f"cache: {stats['hits']} hits, {stats['misses']} misses "
                f"({hit_rate:.1%} hit rate), "
                f"{stats['cached_blocks']}/{stats['capacity']} blocks resident",
                file=sys.stderr,
            )
            if hasattr(store, "quarantine_stats"):
                quarantine = store.quarantine_stats()
                print(
                    f"quarantine: {quarantine['quarantined_blocks']} blocks, "
                    f"{quarantine['quarantine_hits']} hits",
                    file=sys.stderr,
                )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json as _json

    from .store.fsck import fsck_path, repair_path

    if args.repair:
        result = repair_path(args.input, replica=args.replica, source=args.source)
        report = result.after
        if args.json:
            payload = {
                "before": result.before.as_dict(),
                "after": result.after.as_dict(),
                "repaired": list(result.repaired),
                "failed": list(result.failed),
            }
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            for name in result.repaired:
                print(f"repaired {name}")
            for name in result.failed:
                print(f"could not repair {name}", file=sys.stderr)
            print(report.summary())
    else:
        report = fsck_path(args.input)
        if args.json:
            print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
    return 0 if report.clean else 1


def _pipeline_from_args(args: argparse.Namespace):
    """Build the curation :class:`IngestPipeline` the shared flags describe."""
    from .curation import IngestPipeline, column_filter, default_filters

    filters = default_filters(
        canonicalize=args.canonicalize,
        largest_fragment=not args.no_largest_fragment,
        drop_charged=args.drop_charged,
        min_length=args.min_length,
        max_length=args.max_length,
        min_carbons=args.min_carbons,
    )
    if args.column is not None:
        filters.insert(1, column_filter(args.column))
    return IngestPipeline(filters, dedup=not args.no_dedup)


def _print_ingest_stats(stats) -> None:
    print(
        f"ingested {stats.lines_in} lines -> {stats.records_out} records "
        f"({stats.rejected_total()} rejected)"
    )
    for name, stage in stats.stages.items():
        print(f"  {name:<20} seen {stage.seen:>10}  rejected {stage.rejected:>10}")


def _cmd_ingest(args: argparse.Namespace) -> int:
    from .curation import ingest_to_file

    pipeline = _pipeline_from_args(args)
    stats = ingest_to_file(args.input, args.output, pipeline)
    _print_ingest_stats(stats)
    print(f"curated corpus -> {args.output}")
    if args.stats_json is not None:
        import json as _json

        args.stats_json.write_text(
            _json.dumps(stats.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote stats JSON -> {args.stats_json}")
    return 0


def _cmd_train_dict(args: argparse.Namespace) -> int:
    from .curation import identity_of, make_sampler, pin_identity, train_on_sample
    from .dictionary import serialization

    if args.sample < 1:
        print("error: --sample must be >= 1", file=sys.stderr)
        return 2
    pipeline = _pipeline_from_args(args)
    sampler = make_sampler(args.sampler, args.sample, seed=args.seed)
    engine, sampler = train_on_sample(
        pipeline.process(args.input),
        capacity=args.sample,
        sampler=sampler,
        preprocessing=not args.no_preprocessing,
        prepopulation=PrePopulation.from_name(args.prepopulation),
        lmin=args.lmin,
        lmax=args.lmax,
        max_entries=args.max_entries,
    )
    _print_ingest_stats(pipeline.stats)
    pinned = pin_identity(engine.table, name=args.name, version=args.dict_version)
    serialization.save(pinned, args.output)
    identity = identity_of(pinned)
    print(
        f"trained {len(pinned)} entries on a {len(sampler)}-record "
        f"{args.sampler} sample of {sampler.seen} curated records"
    )
    print(f"dictionary {identity.label()} written to {args.output}")
    return 0


def _cmd_repack(args: argparse.Namespace) -> int:
    from .curation import repack_library

    if args.shards is not None and args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.block_size is not None and args.block_size < 1:
        print("error: --block-size must be >= 1", file=sys.stderr)
        return 2
    if args.shard_jobs is not None and args.shard_jobs < 1:
        print("error: --shard-jobs must be >= 1", file=sys.stderr)
        return 2
    result = repack_library(
        args.input,
        args.output,
        args.dictionary,
        shards=args.shards,
        records_per_block=args.block_size,
        shard_jobs=args.shard_jobs,
        verify=not args.no_verify,
    )
    source_label = (
        result.source_identity.label() if result.source_identity else "unpinned"
    )
    info = result.info
    print(
        f"repacked {result.records} records: dictionary {source_label} -> "
        f"{result.target_identity.label()}"
    )
    print(
        f"  {info.shard_count} shards / {info.blocks} blocks, "
        f"{info.original_bytes} -> {info.payload_bytes} payload bytes "
        f"(ratio {info.ratio:.3f}) -> {result.manifest_path}"
    )
    if not args.no_verify:
        print("  full readback verified byte-identical to the source corpus")
    return 0


def _cmd_compose(args: argparse.Namespace) -> int:
    manifest_path = compose_libraries(args.output, args.sources)
    with CorpusLibrary.open(manifest_path) as library:
        print(
            f"composed {len(args.sources)} sources into {library.shard_count} shards "
            f"/ {len(library)} records -> {manifest_path} (no shards repacked)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server.app import run_server
    from .server.fleet import run_fleet

    if args.readers < 1:
        print("error: --readers must be >= 1", file=sys.stderr)
        return 2
    if args.cache_blocks < 1:
        print("error: --cache-blocks must be >= 1", file=sys.stderr)
        return 2
    if args.port < 0:
        print("error: --port must be >= 0", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    codec = _load_engine(args.dictionary).codec if args.dictionary else None
    if args.workers > 1:
        return run_fleet(
            args.input,
            workers=args.workers,
            codec=codec,
            host=args.host,
            port=args.port,
            readers=args.readers,
            cache_blocks=args.cache_blocks,
            use_mmap=args.mmap,
            access_log=args.access_log,
        )
    return run_server(
        args.input,
        codec=codec,
        host=args.host,
        port=args.port,
        readers=args.readers,
        cache_blocks=args.cache_blocks,
        use_mmap=args.mmap,
        access_log=args.access_log,
    )


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import asyncio
    import random
    import time

    if args.requests < 1 or args.batch_size < 1 or args.pool_size < 1:
        print("error: --requests, --batch-size and --pool-size must be >= 1",
              file=sys.stderr)
        return 2
    if args.cache_blocks < 1:
        print("error: --cache-blocks must be >= 1", file=sys.stderr)
        return 2
    codec = _load_engine(args.dictionary).codec if args.dictionary else None
    packed = is_packed_path(args.input)

    def open_target() -> RecordReader:
        if packed:
            return _open_corpus(
                args.input, codec=codec,
                cache_blocks=args.cache_blocks, use_mmap=args.mmap,
            )
        return open_reader(args.input, codec=codec)

    with open_target() as reader:
        total = len(reader)
        if total == 0:
            print("error: corpus is empty", file=sys.stderr)
            return 2
        rng = random.Random(args.seed)
        indices = [rng.randrange(total) for _ in range(args.requests)]

        start = time.perf_counter()
        singles = [reader.get(i) for i in indices]
        single_s = time.perf_counter() - start

        batches = [indices[i : i + args.batch_size]
                   for i in range(0, len(indices), args.batch_size)]
        start = time.perf_counter()
        batched = [record for batch in batches for record in reader.get_many(batch)]
        batched_s = time.perf_counter() - start
        if batched != singles:
            print("error: batched reads disagree with single gets", file=sys.stderr)
            return 1

    label = f"{total} records, layout={'packed' if packed else 'flat'}"
    if args.mmap and packed:
        label += ", mmap"
    print(f"serve-bench: {args.input} ({label})")
    print(f"  single get : {args.requests} requests in {single_s * 1e3:8.2f} ms "
          f"({single_s / args.requests * 1e6:8.1f} us/req)")
    print(f"  get_many   : {len(batches)} batches of <= {args.batch_size} in "
          f"{batched_s * 1e3:8.2f} ms ({batched_s / args.requests * 1e6:8.1f} us/req)")

    def _mode(seconds: float) -> dict:
        seconds = max(seconds, 1e-9)
        return {
            "seconds": round(seconds, 6),
            "us_per_request": round(seconds / args.requests * 1e6, 2),
            "requests_per_sec": round(args.requests / seconds, 1),
        }

    modes = {"single_get": _mode(single_s), "get_many": _mode(batched_s)}

    if packed:
        async def run_async() -> tuple:
            async with AsyncCorpusLibrary.open(
                args.input, codec=codec, pool_size=args.pool_size,
                cache_blocks=args.cache_blocks, use_mmap=args.mmap,
            ) as library:
                start = time.perf_counter()
                records = await library.get_many(indices)
                return records, time.perf_counter() - start

        async_records, async_s = asyncio.run(run_async())
        if async_records != singles:
            print("error: async reads disagree with sync gets", file=sys.stderr)
            return 1
        print(f"  async pool : {args.requests} requests over {args.pool_size} readers in "
              f"{async_s * 1e3:8.2f} ms ({async_s / args.requests * 1e6:8.1f} us/req)")
        modes["async_pool"] = _mode(async_s)

    if args.json is not None:
        import json as _json

        payload = {
            "benchmark": "serve_bench",
            "input": str(args.input),
            "layout": "packed" if packed else "flat",
            "mmap": bool(args.mmap and packed),
            "records": total,
            "requests": args.requests,
            "batch_size": args.batch_size,
            "pool_size": args.pool_size if packed else None,
            "seed": args.seed,
            "modes": modes,
        }
        args.json.write_text(
            _json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"  wrote JSON -> {args.json}")
    return 0


def _flatten_metrics_snapshot(snapshot: dict) -> dict:
    """``/metrics?format=json`` → ``{series key: scalar}`` for diff rendering.

    Counters and gauges flatten to their value; histograms to ``_count``
    and ``_sum`` series (the distribution itself lives in the Prometheus
    text exposition — the watch view tracks movement, not shape).
    """
    flat: dict = {}
    for item in snapshot.get("metrics", []):
        label_names = item.get("labels", [])
        for entry in item.get("series", []):
            labels = ",".join(
                f"{n}={v}" for n, v in zip(label_names, entry["values"])
            )
            key = f"{item['name']}{{{labels}}}" if labels else item["name"]
            if item["kind"] == "histogram":
                flat[key + ":count"] = entry["count"]
                flat[key + ":sum"] = round(entry["sum"], 6)
            else:
                flat[key] = entry["value"]
    return flat


def _print_metrics_diff(flat: dict, previous: Optional[dict]) -> None:
    """First call prints absolute non-zero series; later calls print deltas."""
    if previous is None:
        for key in sorted(flat):
            if flat[key]:
                print(f"{key} {flat[key]:g}")
        return
    changed = sorted(k for k in flat if flat[k] != previous.get(k, 0))
    if not changed:
        print("(no change)")
        return
    for key in changed:
        delta = flat[key] - previous.get(key, 0)
        print(f"{key} {flat[key]:g} (+{delta:g})")


def _cmd_server_stats(args: argparse.Namespace) -> int:
    """``zsmiles stats URL [--watch N] [--json]``: live registry telemetry."""
    import json as _json
    import time as _time

    from .server.client import CorpusClient

    with CorpusClient(args.input) as client:
        if args.json:
            print(_json.dumps(client.metrics_snapshot(), indent=2, sort_keys=True))
            return 0
        flat = _flatten_metrics_snapshot(client.metrics_snapshot())
        _print_metrics_diff(flat, None)
        if args.watch is None:
            return 0
        if args.watch <= 0:
            print("error: --watch must be > 0", file=sys.stderr)
            return 2
        try:
            while True:
                _time.sleep(args.watch)
                current = _flatten_metrics_snapshot(client.metrics_snapshot())
                print(f"--- {_time.strftime('%H:%M:%S')}")
                _print_metrics_diff(current, flat)
                flat = current
        except KeyboardInterrupt:
            return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .server.protocol import is_url

    if is_url(args.input):
        return _cmd_server_stats(args)
    if args.dictionary is None:
        print("error: -d/--dictionary is required for file inputs", file=sys.stderr)
        return 2
    corpus = read_smiles(Path(args.input))
    with _load_engine(args.dictionary, preprocessing=not args.no_preprocessing) as engine:
        stats = engine.evaluate(corpus)
    print(f"records:            {stats.lines}")
    print(f"original bytes:     {stats.original_bytes}")
    print(f"compressed bytes:   {stats.compressed_bytes}")
    print(f"compression ratio:  {stats.ratio:.3f}")
    print(f"escape fraction:    {stats.escape_fraction:.4f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = _DATASET_GENERATORS[args.dataset]
    smiles = generator(args.count, seed=args.seed) if args.dataset != "mixed" else generator(
        args.count, seed=args.seed
    )
    write_smi(args.output, smiles)
    print(f"wrote {len(smiles)} {args.dataset} records to {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = _scale_from_name(args.scale)
    if args.name == "table1":
        print(run_table1(scale=scale).to_table().to_text())
    elif args.name == "table2":
        print(run_table2(scale=scale, via=args.via).to_table().to_text())
    elif args.name == "figure4":
        print(run_figure4(scale=scale).to_table().to_text())
    elif args.name == "figure5":
        for table in run_figure5(scale=scale).to_tables():
            print(table.to_text())
            print()
    else:
        summary = run_summary(scale=scale)
        print(summary.claims.to_table().to_text())
    return 0


def _print_campaign_state(state) -> None:
    print(f"campaign   : {state.name}")
    print(f"source     : {state.source}")
    print(f"seed       : {state.seed}")
    print(f"generation : {state.generation} (last completed)")
    print(f"dictionary : {state.dictionary_hash[:12] or '-'}")
    print(f"composed   : {state.composed_manifest}")
    for key, value in state.counters().items():
        print(f"  {key:<16} {value}")
    for stats in state.generations:
        print(
            f"  gen {stats.generation:>3}: scored={stats.scored:<5} "
            f"survivors={stats.survivors:<5} rejected={stats.rejected:<4} "
            f"best={stats.best_score:.4f} mean={stats.mean_score:.4f} "
            f"({stats.elapsed_seconds:.2f}s)"
        )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignConfig,
        CampaignDriver,
        campaign_status,
        campaign_top_hits,
    )

    if args.campaign_command == "run":
        config = CampaignConfig(
            population_size=args.population,
            generations=args.generations,
            seed=args.seed,
            pocket=args.pocket,
            crossover_rate=args.crossover_rate,
            immigrants=args.immigrants,
            max_heavy_atoms=args.max_heavy_atoms,
            score_jobs=args.score_jobs,
            throttle=args.throttle,
        )
        with CampaignDriver.start(args.source, args.workdir, config) as driver:
            state = driver.run()
        _print_campaign_state(state)
        return 0
    if args.campaign_command == "resume":
        with CampaignDriver.resume(args.workdir, source=args.source) as driver:
            state = driver.run(args.generations)
        _print_campaign_state(state)
        return 0
    if args.campaign_command == "status":
        _print_campaign_state(campaign_status(args.workdir))
        return 0
    # top-hits
    for smiles, score in campaign_top_hits(args.workdir, args.count):
        print(f"{score:12.6f}  {smiles}")
    return 0


_HANDLERS = {
    "train": _cmd_train,
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "index": _cmd_index,
    "get": _cmd_get,
    "pack": _cmd_pack,
    "compose": _cmd_compose,
    "unpack": _cmd_unpack,
    "query": _cmd_query,
    "fsck": _cmd_fsck,
    "serve": _cmd_serve,
    "serve-bench": _cmd_serve_bench,
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "experiment": _cmd_experiment,
    "ingest": _cmd_ingest,
    "train-dict": _cmd_train_dict,
    "repack": _cmd_repack,
    "campaign": _cmd_campaign,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``zsmiles`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _HANDLERS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
