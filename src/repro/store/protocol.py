"""The reader protocol shared by packed stores and flat files.

Callers that serve records — the screening campaign, the CLI ``get`` /
``query`` commands, dataset loaders — should accept any
:class:`RecordReader` instead of a concrete class:

* :class:`~repro.store.reader.CorpusStore` / ``ShardReader`` — the block-
  compressed ``.zss`` container (preferred at scale),
* :class:`~repro.core.random_access.RandomAccessReader` — the documented
  "flat" fallback over line-oriented ``.smi`` / ``.zsmi`` files with a
  ``.zsx`` sidecar index.

:func:`open_reader` picks the right implementation from the file suffix.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Protocol, Sequence, Union, runtime_checkable

from ..core.codec import ZSmilesCodec
from ..core.random_access import RandomAccessReader
from .format import STORE_SUFFIX
from .reader import CorpusStore

PathLike = Union[str, Path]


@runtime_checkable
class RecordReader(Protocol):
    """Random access to an ordered collection of records."""

    def __len__(self) -> int:
        """Number of records served."""
        ...

    def get(self, index: int) -> str:
        """The record at *index* (decompressed when a codec is available)."""
        ...

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records, preserving request order."""
        ...

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        ...

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record in order."""
        ...

    def close(self) -> None:
        """Release the underlying file handles."""
        ...


def open_reader(
    path: PathLike, codec: Optional[ZSmilesCodec] = None
) -> RecordReader:
    """Open the right :class:`RecordReader` for *path* by suffix.

    ``.zss`` files open as a :class:`CorpusStore`; anything else opens as the
    flat :class:`RandomAccessReader` fallback (building its line index on the
    fly when no ``.zsx`` sidecar is supplied).
    """
    path = Path(path)
    if path.suffix == STORE_SUFFIX:
        return CorpusStore(path, codec=codec)
    return RandomAccessReader(path, codec=codec)
