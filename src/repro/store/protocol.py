"""The reader protocol shared by packed stores and flat files.

Callers that serve records — the screening campaign, the CLI ``get`` /
``query`` commands, dataset loaders — should accept any
:class:`RecordReader` instead of a concrete class:

* :class:`~repro.library.CorpusLibrary` / ``ShardedCorpusStore`` — the
  sharded serving layer over ``library.json`` manifests (preferred at
  scale; see :mod:`repro.library` for the full serving guide),
* :class:`~repro.store.reader.CorpusStore` / ``ShardReader`` — one
  block-compressed ``.zss`` container,
* :class:`~repro.core.random_access.RandomAccessReader` — the documented
  "flat" fallback over line-oriented ``.smi`` / ``.zsmi`` files with a
  ``.zsx`` sidecar index,
* :class:`~repro.server.CorpusClient` — the network tier: a blocking HTTP
  client over a :class:`~repro.server.CorpusServer` (``zsmiles serve``).

:func:`open_reader` picks the right implementation from the path:
``http://`` / ``https://`` URLs dispatch to the corpus client, library
directories and ``.json`` manifests to the library, ``.zss`` files to the
store, anything else to the flat reader.  Every implementation is a
context manager, so serving code can uniformly ``with open_reader(...) as
reader:``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Protocol, Sequence, Union, runtime_checkable

from ..core.codec import ZSmilesCodec
from ..core.random_access import RandomAccessReader
from .format import STORE_SUFFIX
from .reader import CorpusStore

PathLike = Union[str, Path]


@runtime_checkable
class RecordReader(Protocol):
    """Random access to an ordered collection of records."""

    def __len__(self) -> int:
        """Number of records served."""
        ...

    def get(self, index: int) -> str:
        """The record at *index* (decompressed when a codec is available)."""
        ...

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records, preserving request order."""
        ...

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        ...

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record in order."""
        ...

    def sample(self, n: int, seed: Optional[int] = None) -> tuple:
        """Seeded uniform sample without replacement: ``(indices, records)``.

        Every implementation draws with ``random.Random(seed).sample`` over
        the index range and clamps *n* to the corpus size — the exact
        semantics of the HTTP tier's ``GET /records:sample`` — so seeded
        sampling is transport-agnostic.
        """
        ...

    def close(self) -> None:
        """Release the underlying file handles."""
        ...

    def __enter__(self) -> "RecordReader":
        """Enter a serving scope (``with open_reader(...) as reader:``)."""
        ...

    def __exit__(self, *exc_info: object) -> None:
        """Close the reader on scope exit."""
        ...


def open_reader(
    path: Union[PathLike, Sequence[str]],
    codec: Optional[ZSmilesCodec] = None,
    retry: Optional[object] = None,
) -> RecordReader:
    """Open the right :class:`RecordReader` for *path*.

    An ``http://`` / ``https://`` URL opens as a
    :class:`~repro.server.CorpusClient` over a running corpus server (the
    server decodes; *codec* is ignored).  *Several* URLs — a list/tuple of
    URLs, or one comma-separated string (``"http://a:1,http://b:2"``) —
    open as a :class:`~repro.server.FailoverCorpusClient` that round-robins
    across the replicas and fails over on retryable outcomes.  A library
    directory or ``.json`` manifest opens as a
    :class:`~repro.library.CorpusLibrary` (sharded serving); ``.zss`` files
    open as a :class:`CorpusStore`; anything else opens as the flat
    :class:`RandomAccessReader` fallback (building its line index on the
    fly when no ``.zsx`` sidecar is supplied).

    *retry* (a :class:`~repro.server.retry.RetryPolicy`) governs transient
    failure handling of the HTTP readers — connect retries for a single
    client, rotation budget for a failover client.  Local readers never
    retry, so the argument is ignored for file-backed paths.
    """
    # URL check runs on the raw string: Path() would collapse the "//" and
    # destroy the scheme.  Imported lazily — repro.server sits on top of
    # this module.
    from ..server.protocol import split_replica_urls

    replica_urls = split_replica_urls(path)
    if replica_urls:
        if len(replica_urls) > 1:
            from ..server.client import FailoverCorpusClient

            return FailoverCorpusClient(replica_urls, retry=retry)
        from ..server.client import CorpusClient

        return CorpusClient(replica_urls[0], retry=retry)
    path = Path(path)
    # Imported lazily: repro.library sits on top of this module.
    from ..library import CorpusLibrary, resolve_manifest_path

    if resolve_manifest_path(path) is not None:
        return CorpusLibrary.open(path, codec=codec)
    if path.suffix == STORE_SUFFIX:
        return CorpusStore(path, codec=codec)
    return RandomAccessReader(path, codec=codec)
