"""Packing corpora into ``.zss`` shards.

:class:`ShardWriter` streams records into fixed-size blocks.  Compression runs
through the PR-1 :class:`~repro.engine.ZSmilesEngine` batch surface: pending
records are accumulated across *several* blocks and compressed in one engine
batch — small batches through the in-process flat-array kernel
(:mod:`repro.engine.kernel`), large ones on the process pool whose workers run
the same kernel (``backend="auto"`` / ``--jobs``) — so packing rides the
codebase's fastest path while the per-record output stays byte-identical to
the serial per-line codec path.

The writer also accepts pre-compressed records (:meth:`add_compressed_many`)
so callers that already hold ``.zsmi`` lines — the screening footprint
accounting, ``.zsmi`` → ``.zss`` conversions — can pack without compressing
twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, List, Optional, Sequence, Union

from ..dictionary import serialization
from ..engine.engine import ZSmilesEngine
from ..errors import StoreError
from .format import (
    BlockInfo,
    DICTIONARY_META_KEY,
    STORE_SUFFIX,
    encode_payload,
    payload_crc,
    write_footer,
    write_header,
)

PathLike = Union[str, Path]

#: Default number of records per block.
DEFAULT_RECORDS_PER_BLOCK = 256
#: Default number of blocks compressed per engine batch.
DEFAULT_BATCH_BLOCKS = 16


@dataclass(frozen=True)
class StoreInfo:
    """Summary of one packed shard.

    Attributes
    ----------
    path:
        Where the shard was written (``None`` for in-memory targets).
    records:
        Total records stored.
    blocks:
        Number of blocks written.
    records_per_block:
        Block granularity of the shard.
    payload_bytes:
        Compressed payload bytes (excluding header/footer framing).
    file_bytes:
        Total shard size, framing included.
    original_bytes:
        Raw bytes of the records compressed through the engine (one newline
        per record), for ratio reporting; records added pre-compressed are
        not counted.
    """

    path: Optional[Path]
    records: int
    blocks: int
    records_per_block: int
    payload_bytes: int
    file_bytes: int
    original_bytes: int

    @property
    def ratio(self) -> float:
        """Payload bytes over raw bytes (lower is better)."""
        if self.original_bytes == 0:
            return 1.0
        return self.payload_bytes / self.original_bytes


class ShardWriter:
    """Write one ``.zss`` shard, compressing records through an engine.

    Parameters
    ----------
    target:
        Output path or an open binary, seekable file object.
    engine:
        Engine used to compress plain records added with :meth:`add` /
        :meth:`add_many`.  May be ``None`` when only pre-compressed records
        are added.
    records_per_block:
        Records stored per block — the random-access granularity: a reader
        decodes this many records to serve one.
    backend:
        Engine backend name for packing batches (``None`` = the engine's
        configured backend, typically ``"auto"``).
    batch_blocks:
        Blocks' worth of records accumulated before one engine batch runs;
        larger values give the process pool bigger batches to spread over
        workers.
    metadata:
        Extra key/value pairs stored in the footer (JSON-serializable).
    embed_dictionary:
        Embed the engine's ``.dct`` dictionary text in the footer so the
        shard is self-describing (readers need no external codec).
    """

    def __init__(
        self,
        target: Union[PathLike, BinaryIO],
        engine: Optional[ZSmilesEngine] = None,
        records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
        backend: Optional[str] = None,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
        metadata: Optional[dict] = None,
        embed_dictionary: bool = True,
    ):
        if records_per_block < 1:
            raise StoreError("records_per_block must be >= 1")
        if batch_blocks < 1:
            raise StoreError("batch_blocks must be >= 1")
        self.engine = engine
        self.records_per_block = records_per_block
        self.backend = backend
        self.batch_blocks = batch_blocks
        self.metadata = dict(metadata or {})
        if embed_dictionary and engine is not None:
            self.metadata.setdefault(DICTIONARY_META_KEY, serialization.dumps(engine.table))

        self.path: Optional[Path]
        if hasattr(target, "write"):
            self.path = None
            self._handle: BinaryIO = target  # type: ignore[assignment]
            self._owns_handle = False
            # Readers locate the magic at offset 0, so a shard cannot start
            # mid-file; reject e.g. append-mode handles over non-empty files.
            if self._handle.tell() != 0:
                raise StoreError("target file object must be positioned at offset 0")
        else:
            self.path = Path(target)
            self._handle = open(self.path, "wb")
            self._owns_handle = True

        self._pending_plain: List[str] = []
        self._compressed: List[str] = []
        self._blocks: List[BlockInfo] = []
        self._records = 0
        self._original_bytes = 0
        self._payload_bytes = 0
        self._closed = False
        write_header(self._handle)
        self._cursor = self._handle.tell()

    # ------------------------------------------------------------------ #
    # Adding records
    # ------------------------------------------------------------------ #
    def add(self, record: str) -> None:
        """Queue one plain record for compression and packing."""
        self._check_open()
        if self.engine is None:
            raise StoreError("ShardWriter needs an engine to compress plain records")
        if "\n" in record or "\r" in record:
            raise StoreError("a record must not contain line terminators")
        self._pending_plain.append(record)
        if len(self._pending_plain) >= self.records_per_block * self.batch_blocks:
            self._compress_pending()
            self._drain_full_blocks()

    def add_many(self, records: Iterable[str]) -> None:
        """Queue several plain records (order preserved)."""
        for record in records:
            self.add(record)

    def add_compressed_many(self, records: Sequence[str]) -> None:
        """Append records that are already per-line codec output.

        Ordering is preserved relative to earlier :meth:`add` calls: any
        pending plain records are compressed first.
        """
        self._check_open()
        for record in records:
            if "\n" in record or "\r" in record:
                raise StoreError("a record must not contain line terminators")
        self._compress_pending()
        self._compressed.extend(records)
        self._drain_full_blocks()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> StoreInfo:
        """Flush everything, write the footer and return the shard summary."""
        self._check_open()
        self._compress_pending()
        self._drain_full_blocks()
        if self._compressed:  # final partial block
            self._write_block(self._compressed)
            self._compressed = []
        write_footer(
            self._handle,
            records_per_block=self.records_per_block,
            total_records=self._records,
            blocks=self._blocks,
            metadata=self.metadata,
        )
        self._handle.flush()
        file_bytes = self._handle.tell()
        if self._owns_handle:
            self._handle.close()
        self._closed = True
        return StoreInfo(
            path=self.path,
            records=self._records,
            blocks=len(self._blocks),
            records_per_block=self.records_per_block,
            payload_bytes=self._payload_bytes,
            file_bytes=file_bytes,
            original_bytes=self._original_bytes,
        )

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if self._closed:
            return
        if exc_type is None:
            self.close()
        elif self._owns_handle:
            self._handle.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("ShardWriter is closed")

    def _compress_pending(self) -> None:
        if not self._pending_plain:
            return
        assert self.engine is not None
        result = self.engine.compress_batch(self._pending_plain, backend=self.backend)
        self._original_bytes += result.stats.original_bytes
        self._compressed.extend(result.records)
        self._pending_plain = []

    def _drain_full_blocks(self) -> None:
        while len(self._compressed) >= self.records_per_block:
            self._write_block(self._compressed[: self.records_per_block])
            self._compressed = self._compressed[self.records_per_block :]

    def _write_block(self, records: List[str]) -> None:
        payload = encode_payload(records)
        self._handle.write(payload)
        self._blocks.append(
            BlockInfo(
                offset=self._cursor,
                length=len(payload),
                records=len(records),
                crc32=payload_crc(payload),
            )
        )
        self._cursor += len(payload)
        self._records += len(records)
        self._payload_bytes += len(payload)


# --------------------------------------------------------------------------- #
# Convenience entry points
# --------------------------------------------------------------------------- #
def pack_records(
    target: Union[PathLike, BinaryIO],
    records: Iterable[str],
    engine: ZSmilesEngine,
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
    backend: Optional[str] = None,
    batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    metadata: Optional[dict] = None,
    embed_dictionary: bool = True,
) -> StoreInfo:
    """Pack an iterable of plain records into one shard at *target*."""
    with ShardWriter(
        target,
        engine=engine,
        records_per_block=records_per_block,
        backend=backend,
        batch_blocks=batch_blocks,
        metadata=metadata,
        embed_dictionary=embed_dictionary,
    ) as writer:
        writer.add_many(records)
        return writer.close()


def pack_compressed_records(
    target: Union[PathLike, BinaryIO],
    compressed_records: Sequence[str],
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
    metadata: Optional[dict] = None,
) -> StoreInfo:
    """Pack records that are already per-line codec output (no engine needed)."""
    with ShardWriter(
        target,
        engine=None,
        records_per_block=records_per_block,
        metadata=metadata,
        embed_dictionary=False,
    ) as writer:
        writer.add_compressed_many(compressed_records)
        return writer.close()


def pack_file(
    input_path: PathLike,
    output_path: Optional[PathLike] = None,
    engine: Optional[ZSmilesEngine] = None,
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
    backend: Optional[str] = None,
    batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    metadata: Optional[dict] = None,
    embed_dictionary: bool = True,
) -> StoreInfo:
    """Pack a line-oriented ``.smi`` file into a ``.zss`` shard.

    Mirrors :meth:`ZSmilesEngine.compress_file`: records are the
    terminator-stripped lines of *input_path*; the default output path swaps
    the suffix for ``.zss``.
    """
    if engine is None:
        raise StoreError("pack_file needs an engine to compress records")
    from ..core.streaming import read_lines

    input_path = Path(input_path)
    if output_path is None:
        output_path = input_path.with_suffix(STORE_SUFFIX)
    return pack_records(
        output_path,
        read_lines(input_path),
        engine,
        records_per_block=records_per_block,
        backend=backend,
        batch_blocks=batch_blocks,
        metadata=metadata,
        embed_dictionary=embed_dictionary,
    )
