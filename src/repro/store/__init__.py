"""Block-compressed corpus store: the ``.zss`` container and its readers.

One ``.zss`` shard packs records into fixed-size blocks whose payloads are
the per-line codec output — byte-identical to the ``.zsmi`` path — framed
with a binary footer (block offsets, record counts, CRC-32 checksums) and
an optional embedded dictionary:

* :class:`ShardWriter` / :func:`pack_records` / :func:`pack_file` — pack a
  corpus through the :class:`~repro.engine.ZSmilesEngine` batch surface;
  ``backend="auto"`` / ``jobs`` parallelize packing across blocks,
* :class:`ShardReader` / :class:`CorpusStore` — O(1) record → block lookup,
  thread-safe LRU-cached block decode (capacity via ``cache_blocks``),
  optional mmap-backed reads (``use_mmap=True``), ``get`` / ``get_many`` /
  ``slice`` / ``iter_all``,
* :class:`RecordReader` / :func:`open_reader` — the protocol every serving
  layer satisfies; ``open_reader`` dispatches by path shape.

This module is the *single-file* layer.  Choosing a layout — flat
``.zsmi`` fallback, one ``.zss`` shard, or a sharded ``library.json``
corpus with async serving — is covered by the serving guide in
:mod:`repro.library`, which builds its :class:`~repro.library.CorpusLibrary`
facade on the readers defined here.

Failure modes & recovery
------------------------

The storage layer assumes disks rot, writes tear, and replicas die; every
defect has a *typed* detection path, a degraded-service mode, and a repair:

**Bit rot inside a block payload**
    Detected on first read: the payload's CRC-32 disagrees with the
    footer's block table and the reader raises
    :class:`~repro.errors.BlockCorruptionError` naming the shard path and
    block index.  The block is *quarantined* — every other block of every
    shard keeps serving (``get``/``get_many``/``slice`` outside the bad
    block succeed normally) and repeat touches of the bad block fail fast
    without re-reading the disk.  ``quarantine_stats()`` (on
    :class:`ShardReader`, :class:`CorpusStore`, the library facades, and
    the server's ``/stats`` payload) reports what is quarantined and how
    often it was hit.  Replica-aware clients treat the error as retryable
    (:func:`repro.server.protocol.is_retryable`): a read of a quarantined
    range fails over to a replica holding clean bytes, so the fleet as a
    whole self-heals the degraded read.

**Truncated shard (torn write, partial copy)**
    A cut inside the footer/trailer region fails
    :func:`~repro.store.format.read_footer`'s validation chain
    (:class:`~repro.errors.StoreFormatError` on open); a cut inside a
    block payload surfaces as a short read →
    :class:`~repro.errors.BlockCorruptionError` + quarantine, as above.

**Finding damage before consumers do**
    ``zsmiles fsck`` (:func:`repro.store.fsck.fsck_path`) scrubs any
    layout — shard, library directory, composed manifest — verifying
    footers, every block CRC, record counts, manifest↔footer agreement and
    dictionary identities; it reports typed
    :class:`~repro.store.fsck.FsckIssue` entries per shard/block.

**Repair**
    ``zsmiles fsck --repair`` (:func:`~repro.store.fsck.repair_path`)
    restores damaged shards from a healthy replica (verbatim byte copy,
    verified clean first — byte-identical restoration) or, when no replica
    holds the bytes, re-packs the damaged shard's record range from the
    source corpus with the dictionary embedded in a healthy sibling
    (content-identical; the manifest is refreshed to the new layout).

**Checkpoint durability** (campaign tier)
    ``campaign.json`` checkpoints are written tmp → fsync → rename →
    directory fsync, so a crash — process or machine — always leaves a
    complete checkpoint, previous or current.
"""

from .format import (
    DICTIONARY_META_KEY,
    MAGIC,
    STORE_SUFFIX,
    VERSION,
    BlockInfo,
    StoreFooter,
    read_footer,
)
from .fsck import FsckIssue, FsckReport, RepairResult, fsck_path, repair_path
from .protocol import RecordReader, open_reader
from .reader import (
    DEFAULT_CACHE_BLOCKS,
    BlockCache,
    BlockCacheView,
    CorpusStore,
    ShardReader,
    read_store_records,
)
from .writer import (
    DEFAULT_RECORDS_PER_BLOCK,
    ShardWriter,
    StoreInfo,
    pack_compressed_records,
    pack_file,
    pack_records,
)

__all__ = [
    "DICTIONARY_META_KEY",
    "DEFAULT_CACHE_BLOCKS",
    "DEFAULT_RECORDS_PER_BLOCK",
    "MAGIC",
    "STORE_SUFFIX",
    "VERSION",
    "BlockCache",
    "BlockCacheView",
    "BlockInfo",
    "CorpusStore",
    "FsckIssue",
    "FsckReport",
    "RecordReader",
    "RepairResult",
    "ShardReader",
    "ShardWriter",
    "StoreFooter",
    "StoreInfo",
    "fsck_path",
    "open_reader",
    "repair_path",
    "pack_compressed_records",
    "pack_file",
    "pack_records",
    "read_footer",
    "read_store_records",
]
