"""Block-compressed corpus store: the ``.zss`` container and its readers.

One ``.zss`` shard packs records into fixed-size blocks whose payloads are
the per-line codec output — byte-identical to the ``.zsmi`` path — framed
with a binary footer (block offsets, record counts, CRC-32 checksums) and
an optional embedded dictionary:

* :class:`ShardWriter` / :func:`pack_records` / :func:`pack_file` — pack a
  corpus through the :class:`~repro.engine.ZSmilesEngine` batch surface;
  ``backend="auto"`` / ``jobs`` parallelize packing across blocks,
* :class:`ShardReader` / :class:`CorpusStore` — O(1) record → block lookup,
  thread-safe LRU-cached block decode (capacity via ``cache_blocks``),
  optional mmap-backed reads (``use_mmap=True``), ``get`` / ``get_many`` /
  ``slice`` / ``iter_all``,
* :class:`RecordReader` / :func:`open_reader` — the protocol every serving
  layer satisfies; ``open_reader`` dispatches by path shape.

This module is the *single-file* layer.  Choosing a layout — flat
``.zsmi`` fallback, one ``.zss`` shard, or a sharded ``library.json``
corpus with async serving — is covered by the serving guide in
:mod:`repro.library`, which builds its :class:`~repro.library.CorpusLibrary`
facade on the readers defined here.
"""

from .format import (
    DICTIONARY_META_KEY,
    MAGIC,
    STORE_SUFFIX,
    VERSION,
    BlockInfo,
    StoreFooter,
    read_footer,
)
from .protocol import RecordReader, open_reader
from .reader import (
    DEFAULT_CACHE_BLOCKS,
    BlockCache,
    BlockCacheView,
    CorpusStore,
    ShardReader,
    read_store_records,
)
from .writer import (
    DEFAULT_RECORDS_PER_BLOCK,
    ShardWriter,
    StoreInfo,
    pack_compressed_records,
    pack_file,
    pack_records,
)

__all__ = [
    "DICTIONARY_META_KEY",
    "DEFAULT_CACHE_BLOCKS",
    "DEFAULT_RECORDS_PER_BLOCK",
    "MAGIC",
    "STORE_SUFFIX",
    "VERSION",
    "BlockCache",
    "BlockCacheView",
    "BlockInfo",
    "CorpusStore",
    "RecordReader",
    "ShardReader",
    "ShardWriter",
    "StoreFooter",
    "StoreInfo",
    "open_reader",
    "pack_compressed_records",
    "pack_file",
    "pack_records",
    "read_footer",
    "read_store_records",
]
