"""Block-compressed corpus store: the ``.zss`` container and its readers.

The flat per-line layout (``.zsmi`` + ``.zsx`` sidecar index, served by
:class:`~repro.core.random_access.RandomAccessReader`) answers one lookup
with one ``seek`` but spends an index entry per record and a file line per
record.  The ``.zss`` container packs records into fixed-size blocks whose
payloads are the per-line codec output — byte-identical to the ``.zsmi``
path — framed with a binary footer (block offsets, record counts, CRC-32
checksums) and an optional embedded dictionary:

* :class:`ShardWriter` / :func:`pack_records` / :func:`pack_file` — pack a
  corpus through the :class:`~repro.engine.ZSmilesEngine` batch surface;
  ``backend="auto"`` / ``jobs`` parallelize packing across blocks,
* :class:`ShardReader` / :class:`CorpusStore` — O(1) record → block lookup,
  LRU-cached block decode, ``get`` / ``get_many`` / ``slice`` / ``iter_all``,
* :class:`RecordReader` / :func:`open_reader` — the protocol both the store
  and the flat fallback satisfy, so serving code takes either.
"""

from .format import (
    DICTIONARY_META_KEY,
    MAGIC,
    STORE_SUFFIX,
    VERSION,
    BlockInfo,
    StoreFooter,
    read_footer,
)
from .protocol import RecordReader, open_reader
from .reader import CorpusStore, ShardReader, read_store_records
from .writer import (
    DEFAULT_RECORDS_PER_BLOCK,
    ShardWriter,
    StoreInfo,
    pack_compressed_records,
    pack_file,
    pack_records,
)

__all__ = [
    "DICTIONARY_META_KEY",
    "DEFAULT_RECORDS_PER_BLOCK",
    "MAGIC",
    "STORE_SUFFIX",
    "VERSION",
    "BlockInfo",
    "CorpusStore",
    "RecordReader",
    "ShardReader",
    "ShardWriter",
    "StoreFooter",
    "StoreInfo",
    "open_reader",
    "pack_compressed_records",
    "pack_file",
    "pack_records",
    "read_footer",
    "read_store_records",
]
