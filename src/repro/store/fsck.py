"""Corpus scrubbing and repair: the ``zsmiles fsck`` engine.

:func:`fsck_path` verifies a packed corpus — a bare ``.zss`` shard, a
library directory, or a (possibly composed) ``library.json`` manifest —
end to end:

* shard header, trailer and footer parse and checksum (``read_footer``'s
  full validation chain),
* every block payload's length and CRC-32 against the footer's block
  table, and its record count against ``decode_payload``,
* manifest ↔ footer agreement: record counts, block counts, block
  granularity and on-disk file size per shard entry,
* dictionary identities: the footer-pinned hash against the manifest's
  pinned identity, and the embedded dictionary text against the
  footer-pinned hash.

Every problem becomes a typed :class:`FsckIssue` naming the shard (and
block, where it applies) — the chaos suites assert a seeded fault plan is
detected 100%, issue for issue.

:func:`repair_path` restores damaged shards:

* from a **healthy replica** holding the same record ranges — the clean
  replica shard's bytes are copied verbatim (byte-identical restoration,
  verified by a re-scrub), or
* from the **source corpus** (a flat ``.smi``) — the damaged shard's
  record range is re-packed with the dictionary embedded in a healthy
  sibling shard, then verified clean and record-count-exact.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ReproError, StoreError, StoreFormatError
from .format import (
    DICTIONARY_HASH_META_KEY,
    DICTIONARY_META_KEY,
    STORE_SUFFIX,
    TRAILER_SIZE,
    StoreFooter,
    decode_payload,
    payload_crc,
    read_footer,
)

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FsckIssue:
    """One verified defect: which shard, what kind, which block (if any).

    kind is one of ``"missing"``, ``"footer"``, ``"block-bounds"``,
    ``"block-short"``, ``"block-crc"``, ``"block-decode"``,
    ``"manifest"``, ``"dictionary"``.
    """

    shard: str
    kind: str
    detail: str
    block: int = -1

    def describe(self) -> str:
        where = f"{self.shard}" + (f" block {self.block}" if self.block >= 0 else "")
        return f"[{self.kind}] {where}: {self.detail}"


@dataclass
class FsckReport:
    """The outcome of one scrub: what was checked and what was wrong."""

    root: str
    layout: str  # "shard" | "library"
    shards_checked: int = 0
    blocks_checked: int = 0
    records_declared: int = 0
    issues: List[FsckIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def damaged_shards(self) -> List[str]:
        """Distinct shard names with at least one issue, in first-seen order."""
        seen: List[str] = []
        for issue in self.issues:
            if issue.shard not in seen:
                seen.append(issue.shard)
        return seen

    def summary(self) -> str:
        lines = [
            f"fsck {self.root} ({self.layout}): "
            f"{self.shards_checked} shards, {self.blocks_checked} blocks, "
            f"{self.records_declared} records declared"
        ]
        if self.clean:
            lines.append("clean: no corruption found")
        else:
            lines.append(f"CORRUPT: {len(self.issues)} issue(s)")
            lines.extend(f"  {issue.describe()}" for issue in self.issues)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "layout": self.layout,
            "clean": self.clean,
            "shards_checked": self.shards_checked,
            "blocks_checked": self.blocks_checked,
            "records_declared": self.records_declared,
            "issues": [
                {
                    "shard": issue.shard,
                    "kind": issue.kind,
                    "block": issue.block,
                    "detail": issue.detail,
                }
                for issue in self.issues
            ],
        }


# ---------------------------------------------------------------------- #
# Scrubbing
# ---------------------------------------------------------------------- #
def _scrub_shard(
    path: Path, name: str, report: FsckReport
) -> Optional[StoreFooter]:
    """Verify one shard file exhaustively; append issues to *report*.

    Returns the parsed footer when the container structure was readable
    (block-level issues may still have been appended), else ``None``.
    """
    if not path.is_file():
        report.issues.append(
            FsckIssue(shard=name, kind="missing", detail=f"shard file {path} missing")
        )
        return None
    try:
        with open(path, "rb") as handle:
            footer = read_footer(handle)
            file_size = path.stat().st_size
            payload_end = file_size - TRAILER_SIZE
            for number, info in enumerate(footer.blocks):
                if info.offset + info.length > payload_end:
                    report.issues.append(
                        FsckIssue(
                            shard=name,
                            kind="block-bounds",
                            block=number,
                            detail=(
                                f"block extends to {info.offset + info.length}, "
                                f"past the payload region ({payload_end})"
                            ),
                        )
                    )
                    continue
                handle.seek(info.offset)
                payload = handle.read(info.length)
                report.blocks_checked += 1
                if len(payload) != info.length:
                    report.issues.append(
                        FsckIssue(
                            shard=name,
                            kind="block-short",
                            block=number,
                            detail=(
                                f"read {len(payload)} of {info.length} payload bytes"
                            ),
                        )
                    )
                    continue
                if payload_crc(payload) != info.crc32:
                    report.issues.append(
                        FsckIssue(
                            shard=name,
                            kind="block-crc",
                            block=number,
                            detail="payload CRC-32 disagrees with the footer",
                        )
                    )
                    continue
                try:
                    decode_payload(payload, info.records)
                except StoreFormatError as exc:
                    report.issues.append(
                        FsckIssue(
                            shard=name, kind="block-decode", block=number,
                            detail=str(exc),
                        )
                    )
    except StoreFormatError as exc:
        report.issues.append(FsckIssue(shard=name, kind="footer", detail=str(exc)))
        return None
    except OSError as exc:
        report.issues.append(FsckIssue(shard=name, kind="missing", detail=str(exc)))
        return None
    report.shards_checked += 1
    _scrub_dictionary(path, name, footer, report)
    return footer


def _scrub_dictionary(
    path: Path, name: str, footer: StoreFooter, report: FsckReport
) -> None:
    """Embedded dictionary text must hash to the footer-pinned identity."""
    from ..dictionary import serialization

    declared = footer.metadata.get(DICTIONARY_HASH_META_KEY)
    text = footer.metadata.get(DICTIONARY_META_KEY)
    if not isinstance(text, str) or not text:
        return
    try:
        table = serialization.loads(text, source=path)
        if isinstance(declared, str) and declared:
            serialization.verify_identity(table, declared, source=path)
    except ReproError as exc:
        report.issues.append(
            FsckIssue(shard=name, kind="dictionary", detail=str(exc))
        )


def _check_manifest_agreement(
    entry, footer: StoreFooter, path: Path, report: FsckReport
) -> None:
    """The manifest's promises about one shard must match its footer."""
    if footer.total_records != entry.records:
        report.issues.append(
            FsckIssue(
                shard=entry.name,
                kind="manifest",
                detail=(
                    f"footer holds {footer.total_records} records, "
                    f"manifest promises {entry.records}"
                ),
            )
        )
    if entry.blocks and footer.block_count != entry.blocks:
        report.issues.append(
            FsckIssue(
                shard=entry.name,
                kind="manifest",
                detail=(
                    f"footer holds {footer.block_count} blocks, "
                    f"manifest promises {entry.blocks}"
                ),
            )
        )
    if entry.records_per_block and footer.records_per_block != entry.records_per_block:
        report.issues.append(
            FsckIssue(
                shard=entry.name,
                kind="manifest",
                detail=(
                    f"footer block granularity {footer.records_per_block}, "
                    f"manifest promises {entry.records_per_block}"
                ),
            )
        )
    actual_bytes = path.stat().st_size
    if entry.file_bytes and actual_bytes != entry.file_bytes:
        report.issues.append(
            FsckIssue(
                shard=entry.name,
                kind="manifest",
                detail=(
                    f"shard is {actual_bytes} bytes on disk, "
                    f"manifest promises {entry.file_bytes}"
                ),
            )
        )


def _check_manifest_dictionary(manifest, entry, footer, report: FsckReport) -> None:
    """Manifest-pinned dictionary hash vs the shard footer's pinned hash."""
    identity = manifest.dictionary_identity()
    if identity is None:
        return
    declared = footer.metadata.get(DICTIONARY_HASH_META_KEY)
    if not isinstance(declared, str) or not declared:
        return
    if declared != identity.hash:
        report.issues.append(
            FsckIssue(
                shard=entry.name,
                kind="dictionary",
                detail=(
                    f"footer pins dictionary {declared[:12]}, manifest pins "
                    f"{identity.short_hash}"
                ),
            )
        )


def fsck_path(path: PathLike) -> FsckReport:
    """Scrub a packed corpus at *path* (``.zss`` / library dir / manifest)."""
    from ..library.manifest import resolve_manifest_path, LibraryManifest
    from ..errors import ManifestError

    path = Path(path)
    manifest_path = resolve_manifest_path(path)
    if manifest_path is not None:
        report = FsckReport(root=str(path), layout="library")
        try:
            manifest = LibraryManifest.load(manifest_path)
        except ManifestError as exc:
            report.issues.append(
                FsckIssue(
                    shard=manifest_path.name, kind="manifest", detail=str(exc)
                )
            )
            return report
        report.records_declared = manifest.total_records
        root = manifest_path.parent
        for entry in manifest.shards:
            shard_path = root / entry.name
            footer = _scrub_shard(shard_path, entry.name, report)
            if footer is None:
                continue
            _check_manifest_agreement(entry, footer, shard_path, report)
            _check_manifest_dictionary(manifest, entry, footer, report)
        return report
    if path.suffix == STORE_SUFFIX:
        report = FsckReport(root=str(path), layout="shard")
        footer = _scrub_shard(path, path.name, report)
        if footer is not None:
            report.records_declared = footer.total_records
        return report
    raise StoreError(
        f"cannot fsck {path}: expected a {STORE_SUFFIX} shard, a library "
        "directory, or a library.json manifest"
    )


# ---------------------------------------------------------------------- #
# Repair
# ---------------------------------------------------------------------- #
@dataclass
class RepairResult:
    """What :func:`repair_path` did: scrubs before/after, shards touched."""

    before: FsckReport
    after: FsckReport
    repaired: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.after.clean


def _shard_paths(path: Path) -> Dict[str, Tuple[Path, object]]:
    """Map shard name → (absolute path, manifest entry or None) for a layout."""
    from ..library.manifest import LibraryManifest, resolve_manifest_path

    manifest_path = resolve_manifest_path(path)
    if manifest_path is not None:
        manifest = LibraryManifest.load(manifest_path)
        root = manifest_path.parent
        return {entry.name: (root / entry.name, entry) for entry in manifest.shards}
    if path.suffix == STORE_SUFFIX:
        return {path.name: (path, None)}
    raise StoreError(f"cannot resolve shards of {path}")


def _repack_from_source(
    damaged_path: Path,
    entry,
    all_paths: Dict[str, Tuple[Path, object]],
    source: Path,
) -> bool:
    """Re-pack one damaged shard's record range from a flat source corpus.

    The dictionary and footer metadata template come from a healthy sibling
    shard (the damaged footer may be unreadable).  A shard stores records
    *after* preprocessing, and the pipeline is not recorded in the shard —
    so it is calibrated against the sibling: whichever candidate pipeline
    maps the sibling's source lines onto the sibling's actual readback is
    the one the original pack used, and the damaged range is re-packed with
    it.  Content parity (record for record) is the hard guarantee on this
    path; byte parity is not, because parse-strategy details may differ.
    """
    from ..core.codec import ZSmilesCodec
    from ..core.streaming import read_lines
    from ..engine.engine import ZSmilesEngine
    from ..preprocess.pipeline import make_pipeline
    from ..store.reader import ShardReader
    from ..store.writer import DEFAULT_RECORDS_PER_BLOCK, pack_records

    if entry is None:
        return False  # a bare shard has no sibling to borrow a codec from
    template = None
    for name, (sibling_path, sibling_entry) in all_paths.items():
        if sibling_path == damaged_path or sibling_entry is None:
            continue
        try:
            with ShardReader(sibling_path) as sibling:
                if sibling.codec is None:
                    continue
                probe_count = min(sibling_entry.records, 32)
                readback = [sibling[i] for i in range(probe_count)]
                template = (
                    sibling.codec.table,
                    dict(sibling.metadata),
                    sibling_entry.start,
                    readback,
                )
                break
        except ReproError:
            continue
    if template is None:
        return False
    table, metadata, probe_start, probe_readback = template
    embed = DICTIONARY_META_KEY in metadata
    metadata.pop(DICTIONARY_META_KEY, None)
    if "shard" in metadata:
        metadata["shard"] = list(all_paths).index(entry.name)

    wanted = {}
    for number, line in enumerate(read_lines(source)):
        if probe_start <= number < probe_start + len(probe_readback):
            wanted.setdefault("probe", []).append(line)
        if entry.start <= number < entry.stop:
            wanted.setdefault("records", []).append(line)
        if number >= max(entry.stop, probe_start + len(probe_readback)):
            break
    records = wanted.get("records", [])
    probe_lines = wanted.get("probe", [])
    if len(records) != entry.records:
        return False

    pipeline = None
    for candidate in (
        make_pipeline(False),
        make_pipeline(True, "innermost"),
        make_pipeline(True, "outermost"),
    ):
        if [candidate(line) for line in probe_lines] == probe_readback:
            pipeline = candidate
            break
    if pipeline is None:
        return False  # source corpus does not reproduce the library's records

    codec = ZSmilesCodec(table, pipeline=pipeline)
    with ZSmilesEngine.from_codec(codec, backend="kernel") as engine:
        pack_records(
            damaged_path,
            records,
            engine,
            records_per_block=entry.records_per_block or DEFAULT_RECORDS_PER_BLOCK,
            metadata=metadata,
            embed_dictionary=embed,
        )
    return True


def repair_path(
    path: PathLike,
    replica: Optional[PathLike] = None,
    source: Optional[PathLike] = None,
) -> RepairResult:
    """Scrub *path* and restore its damaged shards.

    Parameters
    ----------
    path:
        The damaged layout (``.zss`` / library dir / manifest).
    replica:
        A healthy layout holding the same shards (same names, same record
        ranges) — typically another serving replica of the same library.
        Damaged shards are restored by copying the replica's bytes after
        the replica shard itself scrubs clean (byte-identical repair).
    source:
        A flat source corpus (``.smi``): damaged shards are re-packed from
        their record ranges with a healthy sibling's dictionary.  Used for
        shards the replica could not fix (or when no replica is given).
    """
    path = Path(path)
    before = fsck_path(path)
    repaired: List[str] = []
    failed: List[str] = []
    repacked = False
    if not before.clean:
        damaged = before.damaged_shards()
        shard_map = _shard_paths(path)
        replica_map = _shard_paths(Path(replica)) if replica is not None else {}
        for name in damaged:
            if name not in shard_map:
                failed.append(name)  # manifest-level issue, not a shard file
                continue
            damaged_shard_path, entry = shard_map[name]
            fixed = False
            if name in replica_map:
                replica_shard_path, _ = replica_map[name]
                probe = FsckReport(root=str(replica_shard_path), layout="shard")
                if _scrub_shard(replica_shard_path, name, probe) is not None and probe.clean:
                    shutil.copyfile(replica_shard_path, damaged_shard_path)
                    fixed = True
            if not fixed and source is not None:
                try:
                    fixed = _repack_from_source(
                        damaged_shard_path, entry, shard_map, Path(source)
                    )
                    repacked = repacked or fixed
                except ReproError:
                    fixed = False
            (repaired if fixed else failed).append(name)
        if repacked:
            _refresh_manifest(path, shard_map)
    after = fsck_path(path)
    return RepairResult(before=before, after=after, repaired=repaired, failed=failed)


def _refresh_manifest(path: Path, shard_map: Dict[str, Tuple[Path, object]]) -> None:
    """Re-derive the manifest's per-shard facts after a source re-pack.

    A re-packed shard is equivalent record for record but not byte for byte
    (the original pack's preprocessing pipeline is not recoverable from the
    embedded dictionary), so block layout and file sizes may legitimately
    change.  A replica repair copies bytes verbatim and never needs this.
    """
    from ..library.manifest import LibraryManifest, resolve_manifest_path

    manifest_path = resolve_manifest_path(path)
    if manifest_path is None:
        return
    old = LibraryManifest.load(manifest_path)
    rebuilt = LibraryManifest.from_shards(
        [shard_map[entry.name][0] for entry in old.shards],
        metadata=dict(old.metadata),
        root=manifest_path.parent,
    )
    rebuilt.save(manifest_path)
