"""Reading records back out of ``.zss`` shards.

:class:`ShardReader` serves one shard with O(1) record → block lookup
(``record // records_per_block``), per-block CRC validation and an LRU cache
of decoded blocks, so repeated lookups in a hot region never re-read or
re-decompress.  :class:`CorpusStore` composes one or more shards behind the
same :class:`~repro.store.protocol.RecordReader` surface as the flat
:class:`~repro.core.random_access.RandomAccessReader`.

Serving one record touches exactly one block: the reader seeks to the block's
footer-recorded offset and reads ``length`` bytes — never the whole file.
The :attr:`ShardReader.blocks_decoded` / :attr:`ShardReader.bytes_read`
counters make that property testable.  Block decodes run through the
flat-array kernel (:class:`~repro.engine.kernel.BlockKernel`), byte-identical
to the per-line reference decompressor.
"""

from __future__ import annotations

import mmap as _mmap_module
import random
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from pathlib import Path
from typing import BinaryIO, Dict, Hashable, Iterator, List, Optional, Sequence, Union

from ..core.codec import ZSmilesCodec
from ..dictionary import serialization
from ..errors import BlockCorruptionError, RandomAccessError, StoreError, StoreFormatError
from ..telemetry import metrics as _metrics
from .format import (
    DICTIONARY_HASH_META_KEY,
    DICTIONARY_META_KEY,
    StoreFooter,
    decode_payload,
    payload_crc,
    read_footer,
)

PathLike = Union[str, Path]

#: Default number of decoded blocks kept in the LRU cache.
DEFAULT_CACHE_BLOCKS = 16


class BlockCache:
    """Thread-safe LRU cache mapping a block key -> decoded record list.

    Keys are arbitrary hashable values: a lone :class:`ShardReader` uses plain
    block numbers, while :class:`~repro.library.ShardedCorpusStore` shares one
    cache across shards through :class:`BlockCacheView`, whose keys are
    ``(shard path, block)`` pairs — one capacity budget for the whole library
    (or several libraries sharing a cache).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise StoreFormatError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, List[str]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = _metrics.get_registry()
        self._metric_lookups = registry.counter(
            "zsmiles_cache_lookups_total",
            "Block cache lookups, by outcome",
            labels=("outcome",),
        )
        self._metric_evictions = registry.counter(
            "zsmiles_cache_evictions_total",
            "Decoded blocks evicted by LRU pressure",
        )

    def get(self, key: Hashable) -> Optional[List[str]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._metric_lookups.labels("miss").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._metric_lookups.labels("hit").inc()
            return entry

    def put(self, key: Hashable, value: List[str]) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._metric_evictions.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, object]:
        """Hit/miss/occupancy snapshot (the shape ``/stats`` and the CLI report).

        ``hit_rate`` is ``hits / (hits + misses)`` — ``0.0`` before any
        lookup, so an idle cache never divides by zero.
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "capacity": self.capacity,
                "cached_blocks": len(self._entries),
                "evictions": self.evictions,
                "hit_rate": round(self.hits / lookups, 6) if lookups else 0.0,
            }


#: Backwards-compatible private alias (pre-library name).
_BlockCache = BlockCache


class BlockCacheView:
    """A namespaced window onto a shared :class:`BlockCache`.

    Every shard of a sharded library gets its own view over the one shared
    cache, so N shards compete for a single LRU budget instead of each
    hoarding ``cache_blocks`` entries.  Hit/miss counters are the shared
    cache's aggregates.
    """

    def __init__(self, shared: BlockCache, namespace: Hashable):
        self.shared = shared
        self.namespace = namespace

    @property
    def capacity(self) -> int:
        return self.shared.capacity

    @property
    def hits(self) -> int:
        return self.shared.hits

    @property
    def misses(self) -> int:
        return self.shared.misses

    def get(self, key: Hashable) -> Optional[List[str]]:
        return self.shared.get((self.namespace, key))

    def put(self, key: Hashable, value: List[str]) -> None:
        self.shared.put((self.namespace, key), value)

    def __contains__(self, key: Hashable) -> bool:
        return (self.namespace, key) in self.shared

    def stats(self) -> Dict[str, int]:
        """The shared cache's aggregate snapshot (views share one budget)."""
        return self.shared.stats()


class RecordAccessMixin:
    """The bulk :class:`RecordReader` surface, derived from ``get``/``len``.

    Concrete readers implement ``get(index)`` and ``__len__`` (and usually a
    smarter ``iter_all``); this mixin supplies the derived methods and the
    ``line``/``lines`` aliases shared with
    :class:`~repro.core.random_access.RandomAccessReader`, so the protocol
    surface lives in one place.
    """

    def __getitem__(self, index: int) -> str:
        return self.get(index)  # type: ignore[attr-defined]

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records, preserving request order."""
        return [self.get(i) for i in indices]  # type: ignore[attr-defined]

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        if start < 0 or stop < start:
            raise RandomAccessError(f"invalid slice [{start}, {stop})")
        stop = min(stop, len(self))  # type: ignore[arg-type]
        return [self.get(i) for i in range(start, stop)]  # type: ignore[attr-defined]

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record in order."""
        for index in range(len(self)):  # type: ignore[arg-type]
            yield self.get(index)  # type: ignore[attr-defined]

    def sample(self, n: int, seed: Optional[int] = None) -> tuple:
        """Uniform random records without replacement: ``(indices, records)``.

        Mirrors the server's ``GET /records:sample`` exactly — the draw is
        ``random.Random(seed).sample`` over the index range, *n* clamped to
        the corpus size, indices returned sorted — so a campaign sampling
        through a local reader and one sampling over HTTP see the same
        records for the same seed.
        """
        if n < 0:
            raise RandomAccessError(f"sample size must be >= 0, got {n}")
        total = len(self)  # type: ignore[arg-type]
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(total), min(n, total)))
        return indices, self.get_many(indices)

    # Compatibility aliases with RandomAccessReader's historical names.
    def line(self, index: int) -> str:
        """Alias of ``get`` (RandomAccessReader compatibility)."""
        return self.get(index)  # type: ignore[attr-defined]

    def lines(self, indices: Sequence[int]) -> List[str]:
        """Alias of :meth:`get_many` (RandomAccessReader compatibility)."""
        return self.get_many(indices)


class ShardReader(RecordAccessMixin):
    """Random access to the records of one ``.zss`` shard.

    Parameters
    ----------
    source:
        Shard path or an open binary, seekable file object.
    codec:
        Codec used to decompress stored records.  When omitted, the shard's
        embedded dictionary (if any) builds one; with neither, records are
        returned as stored (compressed text), mirroring a codec-less
        :class:`~repro.core.random_access.RandomAccessReader`.
    cache_blocks:
        Decoded blocks kept in the LRU cache (ignored when *cache* is given).
    verify_checksums:
        Validate each block's CRC-32 on first decode.
    use_mmap:
        Serve block reads out of a read-only memory map instead of
        ``seek``/``read`` on the file handle.  Byte-identical to the
        handle path; requires a real file (one with a file descriptor).
    cache / raw_cache:
        Externally owned caches (:class:`BlockCache` or
        :class:`BlockCacheView`) replacing the reader's private ones, so
        several shards can share one LRU budget.
    """

    def __init__(
        self,
        source: Union[PathLike, BinaryIO],
        codec: Optional[ZSmilesCodec] = None,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        verify_checksums: bool = True,
        use_mmap: bool = False,
        cache: Optional[Union[BlockCache, BlockCacheView]] = None,
        raw_cache: Optional[Union[BlockCache, BlockCacheView]] = None,
    ):
        self.path: Optional[Path]
        if hasattr(source, "read"):
            self.path = None
            self._handle: Optional[BinaryIO] = source  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self.path = Path(source)
            self._handle = open(self.path, "rb")
            self._owns_handle = True
        self.use_mmap = use_mmap
        self._mmap: Optional[_mmap_module.mmap] = None
        self._io_lock = threading.Lock()
        try:
            self.footer: StoreFooter = read_footer(self._handle)
            if use_mmap:
                self._init_mmap()
        except Exception:
            if self._owns_handle:
                self._handle.close()
            raise
        self.verify_checksums = verify_checksums
        self._cache = cache if cache is not None else BlockCache(cache_blocks)
        self._raw_cache = raw_cache if raw_cache is not None else BlockCache(cache_blocks)
        self.codec = codec if codec is not None else self._embedded_codec()
        self._kernel = None  # lazy BlockKernel, rebuilt if the codec is swapped
        self.blocks_decoded = 0
        self.bytes_read = 0
        # Quarantine: blocks that failed an integrity check.  Re-reads fail
        # fast with the remembered error instead of re-touching the disk —
        # every record *outside* a quarantined block keeps serving.
        self._quarantined: Dict[int, str] = {}
        self.quarantine_hits = 0
        registry = _metrics.get_registry()
        self._metric_decode_seconds = registry.histogram(
            "zsmiles_store_block_decode_seconds",
            "Wall time of one cache-miss block load+decode",
        )
        self._metric_blocks_decoded = registry.counter(
            "zsmiles_store_blocks_decoded_total",
            "Blocks decoded from shards",
        )
        self._metric_reads = registry.counter(
            "zsmiles_store_reads_total",
            "Block payload reads, by I/O mode",
            labels=("io",),
        )
        self._metric_read_bytes = registry.counter(
            "zsmiles_store_read_bytes_total",
            "Bytes read from shard payloads",
        )
        self._metric_quarantine = registry.counter(
            "zsmiles_store_quarantine_total",
            "Quarantine events, by kind",
            labels=("event",),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def open(self) -> None:
        """(Re)open the underlying file (idempotent; path-backed readers only)."""
        if self._handle is None:
            if self.path is None:
                raise StoreFormatError("cannot reopen a reader over a closed file object")
            self._handle = open(self.path, "rb")
        if self.use_mmap and self._mmap is None:
            self._init_mmap()

    def close(self) -> None:
        """Close the underlying file (idempotent; the cache stays warm).

        Takes the I/O lock so a close never yanks the handle or mmap out
        from under an in-flight block read on another thread.
        """
        with self._io_lock:
            if self._mmap is not None:
                self._mmap.close()
                self._mmap = None
            if self._handle is not None and self._owns_handle:
                self._handle.close()
            self._handle = None

    def _init_mmap(self) -> None:
        assert self._handle is not None
        try:
            fileno = self._handle.fileno()
        except (AttributeError, OSError, ValueError) as exc:
            raise StoreError(
                "use_mmap requires a real file (the source has no file descriptor)"
            ) from exc
        self._mmap = _mmap_module.mmap(fileno, 0, access=_mmap_module.ACCESS_READ)

    def __enter__(self) -> "ShardReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Shard properties
    # ------------------------------------------------------------------ #
    @property
    def records_per_block(self) -> int:
        return self.footer.records_per_block

    @property
    def block_count(self) -> int:
        return self.footer.block_count

    @property
    def metadata(self) -> Dict[str, object]:
        return self.footer.metadata

    @property
    def cache_hits(self) -> int:
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        return self._cache.misses

    def cache_stats(self) -> Dict[str, int]:
        """Decoded-block cache counters (shared aggregates for pooled caches)."""
        return self._cache.stats()

    def quarantine_stats(self) -> Dict[str, object]:
        """Quarantined-block counters: degraded-read observability.

        ``quarantined_blocks`` counts distinct blocks that failed integrity
        checks; ``quarantine_hits`` counts reads refused fast because their
        block was already quarantined; ``blocks`` lists the damaged block
        indices in order.  ``total_blocks_quarantined`` duplicates the count
        so the single-shard shape rolls up the same way the multi-shard
        tiers' payloads do.
        """
        with self._io_lock:
            return {
                "quarantined_blocks": len(self._quarantined),
                "total_blocks_quarantined": len(self._quarantined),
                "quarantine_hits": self.quarantine_hits,
                "blocks": sorted(self._quarantined),
            }

    def __len__(self) -> int:
        return self.footer.total_records

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def block_of(self, index: int) -> int:
        """Block number holding record *index* (O(1))."""
        if not 0 <= index < len(self):
            raise RandomAccessError(f"record {index} out of range [0, {len(self)})")
        return index // self.records_per_block

    def get(self, index: int) -> str:
        """The record at *index*, decompressed when a codec is available."""
        block = self.block_of(index)
        records = self._block_records(block)
        return records[index - block * self.records_per_block]

    def get_raw(self, index: int) -> str:
        """The stored (compressed) record at *index* (LRU-cached per block)."""
        block = self.block_of(index)
        stored = self._raw_cache.get(block)
        if stored is None:
            self._check_quarantine(block)
            stored = self._load_payload(block)
            self._raw_cache.put(block, stored)
        return stored[index - block * self.records_per_block]

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record in order, one block at a time."""
        for block in range(self.block_count):
            yield from self._block_records(block)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _embedded_codec(self) -> Optional[ZSmilesCodec]:
        text = self.footer.metadata.get(DICTIONARY_META_KEY)
        if not isinstance(text, str) or not text:
            return None
        table = serialization.loads(text, source=self.path)
        declared = self.footer.metadata.get(DICTIONARY_HASH_META_KEY)
        if isinstance(declared, str) and declared:
            # A shard that pins its dictionary hash must embed that exact
            # dictionary — disagreement means the footer was spliced or the
            # embedded text edited, and decoding would produce garbage.
            serialization.verify_identity(table, declared, source=self.path)
        return ZSmilesCodec(table)

    def _load_payload(self, block: int) -> List[str]:
        """Read and split one block payload (stored records, not decompressed)."""
        info = self.footer.blocks[block]
        # Seek-then-read on a shared handle is a critical section: concurrent
        # readers interleaving seeks would hand each other the wrong bytes.
        # The mmap path slices without seeking but shares the lock so the
        # lazy (re)open and the counters stay consistent too.
        with self._io_lock:
            self.open()
            if self.use_mmap:
                assert self._mmap is not None
                payload = bytes(self._mmap[info.offset : info.offset + info.length])
            else:
                assert self._handle is not None
                self._handle.seek(info.offset)
                payload = self._handle.read(info.length)
        self._metric_reads.labels("mmap" if self.use_mmap else "handle").inc()
        self._metric_read_bytes.inc(len(payload))
        if len(payload) != info.length:
            raise self._quarantine(block, f"block {block}: short read; truncated shard")
        if self.verify_checksums and payload_crc(payload) != info.crc32:
            raise self._quarantine(
                block, f"block {block}: checksum mismatch; corrupt shard"
            )
        with self._io_lock:
            self.bytes_read += len(payload)
        return decode_payload(payload, info.records)

    def _quarantine(self, block: int, message: str) -> BlockCorruptionError:
        """Remember *block* as damaged and build its typed error."""
        with self._io_lock:
            self._quarantined.setdefault(block, message)
        self._metric_quarantine.labels("quarantined").inc()
        return BlockCorruptionError(message, shard_path=self.path, block=block)

    def _check_quarantine(self, block: int) -> None:
        """Fail fast if *block* is already quarantined (no disk touch)."""
        with self._io_lock:
            message = self._quarantined.get(block)
            if message is None:
                return
            self.quarantine_hits += 1
        self._metric_quarantine.labels("hit").inc()
        raise BlockCorruptionError(message, shard_path=self.path, block=block)

    def _block_records(self, block: int) -> List[str]:
        """Decoded (decompressed) records of one block, LRU-cached."""
        cached = self._cache.get(block)
        if cached is not None:
            return cached
        self._check_quarantine(block)
        started = time.perf_counter()
        stored = self._load_payload(block)
        if self.codec is not None:
            records = self._decompress_block(stored)
        else:
            records = stored
        with self._io_lock:
            self.blocks_decoded += 1
        self._metric_blocks_decoded.inc()
        self._metric_decode_seconds.observe(time.perf_counter() - started)
        self._cache.put(block, records)
        return records

    def _decompress_block(self, stored: List[str]) -> List[str]:
        """Decode one block through the flat-array kernel (reference parity).

        The kernel is compiled lazily from the reader's codec and rebuilt if
        the ``codec`` attribute is swapped; its decompression path is
        re-entrant, so concurrent block decodes can share it.
        """
        kernel = self._kernel
        if kernel is None or kernel.codec is not self.codec:
            from ..engine.kernel import BlockKernel

            kernel = self._kernel = BlockKernel(self.codec)
        return kernel.decompress_block(stored)


class CorpusStore(RecordAccessMixin):
    """One logical corpus over one or more ``.zss`` shards.

    Record indices are global: shard boundaries are resolved with a cumulative
    offset table (bisect over shards, O(1) block lookup within a shard).  A
    single path behaves exactly like a :class:`ShardReader` with the protocol
    surface of :class:`~repro.core.random_access.RandomAccessReader`.
    """

    def __init__(
        self,
        paths: Union[PathLike, BinaryIO, Sequence[Union[PathLike, BinaryIO]]],
        codec: Optional[ZSmilesCodec] = None,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        verify_checksums: bool = True,
        use_mmap: bool = False,
    ):
        if isinstance(paths, (str, Path)) or hasattr(paths, "read"):
            sources: List[Union[PathLike, BinaryIO]] = [paths]  # type: ignore[list-item]
        else:
            sources = list(paths)  # type: ignore[arg-type]
        if not sources:
            raise StoreFormatError("CorpusStore needs at least one shard")
        self.shards: List[ShardReader] = []
        try:
            for source in sources:
                self.shards.append(
                    ShardReader(
                        source,
                        codec=codec,
                        cache_blocks=cache_blocks,
                        verify_checksums=verify_checksums,
                        use_mmap=use_mmap,
                    )
                )
        except Exception:
            for shard in self.shards:
                shard.close()
            raise
        self._starts: List[int] = []
        total = 0
        for shard in self.shards:
            self._starts.append(total)
            total += len(shard)
        self._total = total

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._total

    def _locate(self, index: int) -> tuple[ShardReader, int]:
        if not 0 <= index < self._total:
            raise RandomAccessError(f"record {index} out of range [0, {self._total})")
        shard_no = bisect_right(self._starts, index) - 1
        return self.shards[shard_no], index - self._starts[shard_no]

    def get(self, index: int) -> str:
        """The record at global *index*."""
        shard, local = self._locate(index)
        return shard.get(local)

    def get_raw(self, index: int) -> str:
        """The stored (compressed) record at global *index*."""
        shard, local = self._locate(index)
        return shard.get_raw(local)

    def quarantine_stats(self) -> Dict[str, object]:
        """Aggregate quarantined-block counters across every shard."""
        stats = [shard.quarantine_stats() for shard in self.shards]
        quarantined = sum(s["quarantined_blocks"] for s in stats)
        return {
            "quarantined_blocks": quarantined,
            "total_blocks_quarantined": quarantined,
            "quarantine_hits": sum(s["quarantine_hits"] for s in stats),
            "shards": {
                shard_no: s["blocks"]
                for shard_no, s in enumerate(stats)
                if s["blocks"]
            },
        }

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record of every shard, in order."""
        for shard in self.shards:
            yield from shard.iter_all()


def read_store_records(source: Union[PathLike, BinaryIO], codec: Optional[ZSmilesCodec] = None) -> List[str]:
    """Eagerly read every record of a packed corpus (convenience helper)."""
    with CorpusStore(source, codec=codec) as store:
        return list(store.iter_all())
