"""Binary layout of the ``.zss`` block-compressed corpus container.

A ``.zss`` shard stores a line-oriented corpus as fixed-size *blocks* of
records so that a single molecule can be served out of a multi-TB library by
decoding one small block instead of the whole file (the paper's Section I
random-access requirement, lifted from per-line to per-block granularity).

File layout (all integers little-endian)::

    +---------------------------------------------------------------+
    | header   MAGIC b"ZSS1" + version u8                           |
    +---------------------------------------------------------------+
    | block 0 payload                                               |
    | block 1 payload                                               |
    | ...                                                           |
    +---------------------------------------------------------------+
    | footer   u32 records_per_block                                |
    |          u64 total_records                                    |
    |          u32 block_count                                      |
    |          block_count x (u64 offset, u32 length,               |
    |                         u32 records, u32 crc32)               |
    |          u32 meta_length + metadata JSON (sorted keys)        |
    +---------------------------------------------------------------+
    | trailer  u64 footer_offset, u32 footer_crc32, b"1SSZ"         |
    +---------------------------------------------------------------+

A block payload is the per-record ZSMILES codec output of its records,
Latin-1 encoded and newline-joined (with a trailing newline) — byte-identical
to the corresponding slice of a ``.zsmi`` file, which is what the golden
parity tests pin.  The footer lives at the end so shards stream out in one
pass; readers locate it through the fixed-size trailer.  Every byte of the
format is deterministic (no timestamps), so identical inputs produce
identical files.

The metadata JSON may embed the training dictionary under the
``"dictionary"`` key (the ``.dct`` text), making a shard self-describing:
readers can decode records without being handed a codec.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Dict, List, Tuple

from ..errors import StoreFormatError

#: Header magic of a ``.zss`` shard.
MAGIC = b"ZSS1"
#: Magic closing the fixed-size trailer (header magic reversed).
END_MAGIC = b"1SSZ"
#: Current format version.
VERSION = 1
#: Conventional extension for packed corpus shards.
STORE_SUFFIX = ".zss"

#: Encoding of block payloads (matches ``.zsmi`` files: one byte per symbol).
PAYLOAD_ENCODING = "latin-1"
#: Record separator inside a block payload.
RECORD_SEPARATOR = b"\n"

#: Metadata key under which the ``.dct`` dictionary text may be embedded.
DICTIONARY_META_KEY = "dictionary"
#: Metadata key under which a shard may pin its dictionary's content hash.
DICTIONARY_HASH_META_KEY = "dictionary_hash"

_HEADER = struct.Struct("<4sB")
_FOOTER_FIXED = struct.Struct("<IQI")
_BLOCK_ENTRY = struct.Struct("<QIII")
_META_LEN = struct.Struct("<I")
_TRAILER = struct.Struct("<QI4s")

#: Size in bytes of the fixed header / trailer.
HEADER_SIZE = _HEADER.size
TRAILER_SIZE = _TRAILER.size


@dataclass(frozen=True)
class BlockInfo:
    """Location and checksum of one block inside a shard.

    Attributes
    ----------
    offset:
        Absolute byte offset of the block payload.
    length:
        Payload length in bytes.
    records:
        Number of records stored in the block.
    crc32:
        CRC-32 of the payload bytes.
    """

    offset: int
    length: int
    records: int
    crc32: int


@dataclass(frozen=True)
class StoreFooter:
    """Parsed footer of one shard: the block table plus metadata."""

    records_per_block: int
    total_records: int
    blocks: Tuple[BlockInfo, ...]
    metadata: Dict[str, object]

    @property
    def block_count(self) -> int:
        return len(self.blocks)


def write_header(handle: BinaryIO) -> int:
    """Write the shard header; returns the number of bytes written."""
    handle.write(_HEADER.pack(MAGIC, VERSION))
    return HEADER_SIZE


def encode_payload(records: List[str]) -> bytes:
    """Encode a block's compressed records into its on-disk payload."""
    try:
        return b"".join(
            record.encode(PAYLOAD_ENCODING) + RECORD_SEPARATOR for record in records
        )
    except UnicodeEncodeError as exc:
        raise StoreFormatError(
            f"record contains a symbol outside the {PAYLOAD_ENCODING} range: {exc}"
        ) from exc


def decode_payload(payload: bytes, expected_records: int) -> List[str]:
    """Split a block payload back into its stored (compressed) records."""
    if payload and not payload.endswith(RECORD_SEPARATOR):
        raise StoreFormatError("block payload does not end with a record separator")
    records = payload.decode(PAYLOAD_ENCODING).split("\n")[:-1]
    if len(records) != expected_records:
        raise StoreFormatError(
            f"block decoded to {len(records)} records, footer says {expected_records}"
        )
    return records


def payload_crc(payload: bytes) -> int:
    """CRC-32 of a block payload (the checksum stored in the footer)."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def serialize_metadata(metadata: Dict[str, object]) -> bytes:
    """Deterministic (sorted-key, ASCII) JSON encoding of the footer metadata."""
    return json.dumps(metadata, sort_keys=True, ensure_ascii=True).encode("ascii")


def write_footer(
    handle: BinaryIO,
    records_per_block: int,
    total_records: int,
    blocks: List[BlockInfo],
    metadata: Dict[str, object],
) -> None:
    """Write the footer and trailer; *handle* must sit at the footer offset."""
    footer_offset = handle.tell()
    parts = [_FOOTER_FIXED.pack(records_per_block, total_records, len(blocks))]
    for block in blocks:
        parts.append(
            _BLOCK_ENTRY.pack(block.offset, block.length, block.records, block.crc32)
        )
    meta_bytes = serialize_metadata(metadata)
    parts.append(_META_LEN.pack(len(meta_bytes)))
    parts.append(meta_bytes)
    footer = b"".join(parts)
    handle.write(footer)
    handle.write(_TRAILER.pack(footer_offset, payload_crc(footer), END_MAGIC))


def read_footer(handle: BinaryIO) -> StoreFooter:
    """Validate the header/trailer of an open shard and parse its footer."""
    handle.seek(0)
    header = handle.read(HEADER_SIZE)
    if len(header) < HEADER_SIZE:
        raise StoreFormatError("file too small to be a .zss shard")
    magic, version = _HEADER.unpack(header)
    if magic != MAGIC:
        raise StoreFormatError(f"bad magic {magic!r}; not a .zss shard")
    if version != VERSION:
        raise StoreFormatError(f"unsupported .zss version {version}")

    handle.seek(0, 2)
    file_size = handle.tell()
    if file_size < HEADER_SIZE + TRAILER_SIZE:
        raise StoreFormatError("truncated .zss shard (missing trailer)")
    handle.seek(file_size - TRAILER_SIZE)
    footer_offset, footer_crc, end_magic = _TRAILER.unpack(handle.read(TRAILER_SIZE))
    if end_magic != END_MAGIC:
        raise StoreFormatError("bad trailer magic; truncated or corrupt shard")
    if not HEADER_SIZE <= footer_offset <= file_size - TRAILER_SIZE:
        raise StoreFormatError(f"footer offset {footer_offset} out of bounds")

    handle.seek(footer_offset)
    footer = handle.read(file_size - TRAILER_SIZE - footer_offset)
    if payload_crc(footer) != footer_crc:
        raise StoreFormatError("footer checksum mismatch; corrupt shard")

    if len(footer) < _FOOTER_FIXED.size:
        raise StoreFormatError("footer too small")
    records_per_block, total_records, block_count = _FOOTER_FIXED.unpack_from(footer, 0)
    cursor = _FOOTER_FIXED.size
    blocks: List[BlockInfo] = []
    for _ in range(block_count):
        if cursor + _BLOCK_ENTRY.size > len(footer):
            raise StoreFormatError("footer block table truncated")
        offset, length, records, crc32 = _BLOCK_ENTRY.unpack_from(footer, cursor)
        cursor += _BLOCK_ENTRY.size
        blocks.append(BlockInfo(offset=offset, length=length, records=records, crc32=crc32))
    if cursor + _META_LEN.size > len(footer):
        raise StoreFormatError("footer metadata length truncated")
    (meta_len,) = _META_LEN.unpack_from(footer, cursor)
    cursor += _META_LEN.size
    if cursor + meta_len > len(footer):
        raise StoreFormatError("footer metadata truncated")
    try:
        metadata = json.loads(footer[cursor : cursor + meta_len].decode("ascii")) if meta_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreFormatError(f"footer metadata is not valid JSON: {exc}") from exc
    if not isinstance(metadata, dict):
        raise StoreFormatError("footer metadata must be a JSON object")

    if sum(block.records for block in blocks) != total_records:
        raise StoreFormatError("footer record counts do not sum to total_records")
    if records_per_block < 1 and blocks:
        raise StoreFormatError("records_per_block must be >= 1")
    for number, block in enumerate(blocks):
        # Readers compute record -> block as index // records_per_block, so
        # every block except the last must be exactly full.
        expected = records_per_block if number < len(blocks) - 1 else block.records
        if block.records != expected or block.records > records_per_block:
            raise StoreFormatError(
                f"block {number} holds {block.records} records; non-final blocks "
                f"must hold exactly records_per_block ({records_per_block})"
            )
        if block.records < 1:
            raise StoreFormatError(f"block {number} is empty")
    return StoreFooter(
        records_per_block=records_per_block,
        total_records=total_records,
        blocks=tuple(blocks),
        metadata=metadata,
    )
