"""SMILES tokenizer.

Splits a SMILES string into a flat sequence of :class:`Token` objects without
building a molecular graph.  The tokenizer is deliberately independent from
the parser so that light-weight consumers — the ring renumbering preprocessor
(Section IV-A of the paper) and the validators — can work on token streams
without paying for full graph construction.

The grammar covered is the practically-relevant subset used by large virtual
screening libraries:

* organic-subset atoms (``B C N O P S F Cl Br I``) and their aromatic
  lower-case forms,
* bracket atoms ``[isotope? symbol chiral? hcount? charge? class?]``,
* bonds ``- = # $ : / \\ ~``,
* branches ``( )``,
* ring-bond closures ``1``–``9`` and ``%nn``,
* the dot disconnection ``.``,
* the wildcard atom ``*``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..errors import TokenizationError
from .alphabet import AROMATIC_ORGANIC, ORGANIC_SUBSET


class TokenType(enum.Enum):
    """Classification of a SMILES token."""

    ATOM = "atom"                  # organic subset atom, aromatic or wildcard
    BRACKET_ATOM = "bracket_atom"  # full [ ... ] atom description
    BOND = "bond"
    BRANCH_OPEN = "branch_open"
    BRANCH_CLOSE = "branch_close"
    RING_BOND = "ring_bond"        # single digit or %nn
    DOT = "dot"


@dataclass(frozen=True)
class Token:
    """One lexical unit of a SMILES string.

    Attributes
    ----------
    type:
        The :class:`TokenType` classification.
    text:
        The exact substring of the input this token covers.
    position:
        Zero-based offset of the first character in the original string.
    ring_id:
        For :attr:`TokenType.RING_BOND` tokens, the integer ring identifier
        (``%12`` → 12); ``None`` otherwise.
    """

    type: TokenType
    text: str
    position: int
    ring_id: Optional[int] = field(default=None, compare=False)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.text)


# Two-character organic subset symbols must be tried first.
_TWO_CHAR_ORGANIC = tuple(sym for sym in ORGANIC_SUBSET if len(sym) == 2)
_ONE_CHAR_ORGANIC = tuple(sym for sym in ORGANIC_SUBSET if len(sym) == 1)
_AROMATIC = set(AROMATIC_ORGANIC)
_BOND_CHARS = set("-=#$:/\\~")

#: The bracket-atom grammar as one non-capturing pattern string.  This is the
#: single source of truth: the tokenizer compiles it directly, and the
#: ring-renumbering fast path (:mod:`repro.preprocess.ring_renumber`) embeds
#: it in its whole-line validity gate so the two can never drift apart.
BRACKET_ATOM_PATTERN = (
    r"\[(?:\d+)?(?:\*|[A-Z][a-z]?|[a-z][a-z]?)"
    r"(?:@{1,2}(?:TH[12]|AL[12]|SP[1-3]|TB\d{1,2}|OH\d{1,2})?)?"
    r"(?:H\d*)?(?:\+\d+|-\d+|\+{1,3}|-{1,3})?(?::\d+)?\]"
)

_BRACKET_RE = re.compile(BRACKET_ATOM_PATTERN)


def tokenize(smiles: str) -> List[Token]:
    """Tokenize *smiles* into a list of :class:`Token` objects.

    Raises
    ------
    TokenizationError
        If an unexpected character or an unterminated bracket atom is found.
    """
    if not isinstance(smiles, str):
        raise TokenizationError(f"expected str, got {type(smiles).__name__}")
    tokens: List[Token] = []
    i = 0
    n = len(smiles)
    while i < n:
        ch = smiles[i]

        if ch == "[":
            match = _BRACKET_RE.match(smiles, i)
            if match is None:
                end = smiles.find("]", i)
                if end == -1:
                    raise TokenizationError(
                        "unterminated bracket atom", smiles=smiles, position=i
                    )
                raise TokenizationError(
                    f"malformed bracket atom {smiles[i:end + 1]!r}",
                    smiles=smiles,
                    position=i,
                )
            text = match.group(0)
            tokens.append(Token(TokenType.BRACKET_ATOM, text, i))
            i += len(text)
            continue

        if ch == "%":
            if i + 2 >= n or not smiles[i + 1].isdigit() or not smiles[i + 2].isdigit():
                raise TokenizationError(
                    "'%' ring bond must be followed by two digits",
                    smiles=smiles,
                    position=i,
                )
            text = smiles[i : i + 3]
            tokens.append(Token(TokenType.RING_BOND, text, i, ring_id=int(text[1:])))
            i += 3
            continue

        if ch.isdigit():
            tokens.append(Token(TokenType.RING_BOND, ch, i, ring_id=int(ch)))
            i += 1
            continue

        if ch == "(":
            tokens.append(Token(TokenType.BRANCH_OPEN, ch, i))
            i += 1
            continue

        if ch == ")":
            tokens.append(Token(TokenType.BRANCH_CLOSE, ch, i))
            i += 1
            continue

        if ch == ".":
            tokens.append(Token(TokenType.DOT, ch, i))
            i += 1
            continue

        if ch in _BOND_CHARS:
            tokens.append(Token(TokenType.BOND, ch, i))
            i += 1
            continue

        if ch == "*":
            tokens.append(Token(TokenType.ATOM, ch, i))
            i += 1
            continue

        two = smiles[i : i + 2]
        if two in _TWO_CHAR_ORGANIC:
            tokens.append(Token(TokenType.ATOM, two, i))
            i += 2
            continue

        if ch in _ONE_CHAR_ORGANIC or ch in _AROMATIC:
            tokens.append(Token(TokenType.ATOM, ch, i))
            i += 1
            continue

        raise TokenizationError(
            f"unexpected character {ch!r}", smiles=smiles, position=i
        )

    return tokens


def iter_tokens(smiles: str) -> Iterator[Token]:
    """Lazily iterate over the tokens of *smiles* (same grammar as :func:`tokenize`)."""
    yield from tokenize(smiles)


def detokenize(tokens: Sequence[Token]) -> str:
    """Reassemble a token sequence into a SMILES string.

    ``detokenize(tokenize(s)) == s`` for every tokenizable string *s*; this
    round-trip is property-tested.
    """
    return "".join(tok.text for tok in tokens)


def is_tokenizable(smiles: str) -> bool:
    """Return ``True`` if *smiles* tokenizes without error."""
    try:
        tokenize(smiles)
    except TokenizationError:
        return False
    return True
