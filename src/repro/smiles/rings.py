"""Ring-bond analysis on SMILES token streams.

The ZSMILES preprocessor (Section IV-A) rewrites ring-bond identifiers without
building a molecular graph: it only needs to know which ring-bond token opens
which ring, where that ring closes, and how ring spans nest.  This module
provides exactly that: :func:`pair_ring_bonds` pairs opening/closing tokens
and :func:`ring_spans` exposes their nesting structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import RingNumberingError
from .tokenizer import Token, TokenType, tokenize


@dataclass(frozen=True)
class RingSpan:
    """A matched pair of ring-bond tokens.

    Attributes
    ----------
    ring_id:
        The identifier as written in the input (before any renumbering).
    open_index:
        Index into the token list of the opening token.
    close_index:
        Index into the token list of the closing token.
    """

    ring_id: int
    open_index: int
    close_index: int

    @property
    def length(self) -> int:
        """Number of tokens strictly between the opening and closing tokens."""
        return self.close_index - self.open_index - 1

    def contains(self, other: "RingSpan") -> bool:
        """``True`` when *other* is strictly nested inside this span."""
        return self.open_index < other.open_index and other.close_index < self.close_index

    def overlaps(self, other: "RingSpan") -> bool:
        """``True`` when the two spans are simultaneously open at some point."""
        return not (
            self.close_index < other.open_index or other.close_index < self.open_index
        )


def pair_ring_bonds(tokens: Sequence[Token]) -> List[RingSpan]:
    """Pair ring-bond tokens by identifier, in order of their opening position.

    SMILES semantics: the first occurrence of an identifier opens a ring, the
    second occurrence closes it, after which the identifier may be reused.

    Raises
    ------
    RingNumberingError
        If any identifier is left open at the end of the stream.
    """
    open_rings: Dict[int, int] = {}
    spans: List[RingSpan] = []
    for index, tok in enumerate(tokens):
        if tok.type is not TokenType.RING_BOND:
            continue
        ring_id = tok.ring_id
        assert ring_id is not None
        if ring_id in open_rings:
            spans.append(RingSpan(ring_id, open_rings.pop(ring_id), index))
        else:
            open_rings[ring_id] = index
    if open_rings:
        unclosed = sorted(open_rings)
        raise RingNumberingError(f"unclosed ring bond identifier(s): {unclosed}")
    spans.sort(key=lambda span: span.open_index)
    return spans


def ring_spans(smiles: str) -> List[RingSpan]:
    """Tokenize *smiles* and return its ring spans (see :func:`pair_ring_bonds`)."""
    return pair_ring_bonds(tokenize(smiles))


def max_simultaneous_rings(spans: Sequence[RingSpan]) -> int:
    """Maximum number of rings simultaneously open anywhere in the string.

    This lower-bounds the number of distinct identifiers any renumbering must
    use, so it is the natural sanity check for the preprocessor.
    """
    events: List[tuple[int, int]] = []
    for span in spans:
        events.append((span.open_index, 1))
        events.append((span.close_index, -1))
    events.sort()
    current = best = 0
    for _, delta in events:
        current += delta
        best = max(best, current)
    return best


def ring_statistics(smiles: str) -> Dict[str, float]:
    """Summary statistics about ring usage in one SMILES string.

    Returns a dict with ``count`` (number of rings), ``distinct_ids`` (number
    of distinct identifiers used), ``max_open`` (maximum simultaneously open)
    and ``mean_span`` (average token distance between opening and closing).
    """
    spans = ring_spans(smiles)
    if not spans:
        return {"count": 0, "distinct_ids": 0, "max_open": 0, "mean_span": 0.0}
    distinct = len({span.ring_id for span in spans})
    mean_span = sum(span.length for span in spans) / len(spans)
    return {
        "count": len(spans),
        "distinct_ids": distinct,
        "max_open": max_simultaneous_rings(spans),
        "mean_span": mean_span,
    }
