"""SMILES parser: token stream → :class:`~repro.smiles.graph.MolecularGraph`.

The parser implements the structural rules of the SMILES grammar that matter
for this reproduction: branch nesting, ring-bond pairing (including bond
symbols attached to either the opening or closing digit), dot disconnections
and bracket-atom attributes.  Aromatic perception, kekulization and full
valence models are out of scope — the compression experiments only require
structural round-tripping, which is property-tested against the writer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from .graph import Atom, BondOrder, MolecularGraph
from .tokenizer import Token, TokenType, tokenize

_BRACKET_RE = re.compile(
    r"""
    \[
    (?P<isotope>\d+)?
    (?P<symbol>\*|[A-Z][a-z]?|[a-z][a-z]?)
    (?P<chiral>@{1,2}(?:TH[12]|AL[12]|SP[1-3]|TB\d{1,2}|OH\d{1,2})?)?
    (?P<hcount>H\d*)?
    (?P<charge>\+\d+|-\d+|\+{1,3}|-{1,3})?
    (?::(?P<cls>\d+))?
    \]
    """,
    re.VERBOSE,
)

_BOND_BY_SYMBOL: Dict[str, BondOrder] = {order.value: order for order in BondOrder}


def parse_bracket_atom(text: str) -> Atom:
    """Parse the text of a bracket atom token (``[13C@H2+:5]`` style) into an :class:`Atom`.

    Raises
    ------
    ParseError
        If the text is not a well-formed bracket atom.
    """
    match = _BRACKET_RE.fullmatch(text)
    if match is None:
        raise ParseError(f"malformed bracket atom {text!r}")
    symbol = match.group("symbol")
    aromatic = symbol[0].islower() and symbol != "*"
    element = symbol if symbol == "*" else symbol.capitalize()

    isotope = int(match.group("isotope")) if match.group("isotope") else None

    hcount: Optional[int] = None
    hgroup = match.group("hcount")
    if hgroup is not None:
        hcount = int(hgroup[1:]) if len(hgroup) > 1 else 1

    charge = 0
    cgroup = match.group("charge")
    if cgroup:
        if cgroup in ("+", "++", "+++"):
            charge = len(cgroup)
        elif cgroup in ("-", "--", "---"):
            charge = -len(cgroup)
        else:
            charge = int(cgroup)

    atom_class = int(match.group("cls")) if match.group("cls") else None

    return Atom(
        element=element,
        aromatic=aromatic,
        charge=charge,
        isotope=isotope,
        explicit_h=hcount,
        chirality=match.group("chiral"),
        atom_class=atom_class,
        bracket=True,
    )


@dataclass
class _RingOpening:
    """Bookkeeping for a ring-bond digit seen once but not yet closed."""

    atom: int
    bond: Optional[BondOrder]
    position: int


class SmilesParser:
    """Stateful single-pass SMILES parser.

    A fresh parser instance should be used per string (use the module-level
    :func:`parse` helper); the class exists mainly so that the intermediate
    state is inspectable in tests.
    """

    def __init__(self, smiles: str):
        self.smiles = smiles
        self.graph = MolecularGraph()
        self._prev_atom: Optional[int] = None
        self._pending_bond: Optional[BondOrder] = None
        self._branch_stack: List[Tuple[Optional[int], Optional[BondOrder]]] = []
        self._open_rings: Dict[int, _RingOpening] = {}
        self._new_component = True

    # ------------------------------------------------------------------ #
    def run(self) -> MolecularGraph:
        """Parse the SMILES string supplied at construction time."""
        tokens = tokenize(self.smiles)
        for tok in tokens:
            self._consume(tok)
        if self._branch_stack:
            raise ParseError(
                "unclosed branch parenthesis", smiles=self.smiles, position=len(self.smiles)
            )
        if self._open_rings:
            ring_ids = sorted(self._open_rings)
            raise ParseError(
                f"unclosed ring bond id(s) {ring_ids}",
                smiles=self.smiles,
                position=len(self.smiles),
            )
        if self._pending_bond is not None:
            raise ParseError(
                "dangling bond symbol at end of input",
                smiles=self.smiles,
                position=len(self.smiles),
            )
        return self.graph

    # ------------------------------------------------------------------ #
    def _consume(self, tok: Token) -> None:
        if tok.type in (TokenType.ATOM, TokenType.BRACKET_ATOM):
            self._handle_atom(tok)
        elif tok.type == TokenType.BOND:
            if self._pending_bond is not None:
                raise ParseError(
                    "two consecutive bond symbols", smiles=self.smiles, position=tok.position
                )
            self._pending_bond = _BOND_BY_SYMBOL[tok.text]
        elif tok.type == TokenType.BRANCH_OPEN:
            if self._prev_atom is None:
                raise ParseError(
                    "branch opened before any atom", smiles=self.smiles, position=tok.position
                )
            self._branch_stack.append((self._prev_atom, self._pending_bond))
            self._pending_bond = None
        elif tok.type == TokenType.BRANCH_CLOSE:
            if not self._branch_stack:
                raise ParseError(
                    "unmatched ')'", smiles=self.smiles, position=tok.position
                )
            if self._pending_bond is not None:
                raise ParseError(
                    "dangling bond symbol before ')'",
                    smiles=self.smiles,
                    position=tok.position,
                )
            self._prev_atom, self._pending_bond = self._branch_stack.pop()
            self._pending_bond = None
        elif tok.type == TokenType.RING_BOND:
            self._handle_ring(tok)
        elif tok.type == TokenType.DOT:
            if self._pending_bond is not None:
                raise ParseError(
                    "bond symbol before '.'", smiles=self.smiles, position=tok.position
                )
            self._prev_atom = None
            self._new_component = True
        else:  # pragma: no cover - exhaustive enum
            raise ParseError(f"unhandled token {tok!r}", smiles=self.smiles)

    # ------------------------------------------------------------------ #
    def _handle_atom(self, tok: Token) -> None:
        if tok.type == TokenType.BRACKET_ATOM:
            atom = parse_bracket_atom(tok.text)
        else:
            text = tok.text
            if text == "*":
                atom = Atom(element="*")
            elif text.islower():
                atom = Atom(element=text.capitalize(), aromatic=True)
            else:
                atom = Atom(element=text)
        idx = self.graph.add_atom(atom)
        if self._prev_atom is not None:
            order = self._pending_bond
            if order is None:
                prev = self.graph.atoms[self._prev_atom]
                order = (
                    BondOrder.AROMATIC
                    if prev.aromatic and atom.aromatic
                    else BondOrder.SINGLE
                )
            self.graph.add_bond(self._prev_atom, idx, order)
        self._pending_bond = None
        self._prev_atom = idx
        self._new_component = False

    def _handle_ring(self, tok: Token) -> None:
        if self._prev_atom is None:
            raise ParseError(
                "ring bond digit before any atom", smiles=self.smiles, position=tok.position
            )
        ring_id = tok.ring_id
        assert ring_id is not None
        if ring_id in self._open_rings:
            opening = self._open_rings.pop(ring_id)
            if opening.atom == self._prev_atom:
                raise ParseError(
                    f"ring bond {ring_id} closes on its opening atom",
                    smiles=self.smiles,
                    position=tok.position,
                )
            order = self._pending_bond or opening.bond
            if (
                self._pending_bond is not None
                and opening.bond is not None
                and self._pending_bond is not opening.bond
            ):
                raise ParseError(
                    f"conflicting bond orders on ring bond {ring_id}",
                    smiles=self.smiles,
                    position=tok.position,
                )
            if order is None:
                a = self.graph.atoms[opening.atom]
                b = self.graph.atoms[self._prev_atom]
                order = (
                    BondOrder.AROMATIC
                    if a.aromatic and b.aromatic
                    else BondOrder.SINGLE
                )
            if self.graph.get_bond(opening.atom, self._prev_atom) is not None:
                raise ParseError(
                    f"ring bond {ring_id} duplicates an existing bond",
                    smiles=self.smiles,
                    position=tok.position,
                )
            self.graph.add_bond(opening.atom, self._prev_atom, order)
        else:
            self._open_rings[ring_id] = _RingOpening(
                atom=self._prev_atom, bond=self._pending_bond, position=tok.position
            )
        self._pending_bond = None


def parse(smiles: str) -> MolecularGraph:
    """Parse *smiles* and return its :class:`MolecularGraph`.

    Raises
    ------
    TokenizationError
        If the string contains characters outside the SMILES grammar.
    ParseError
        If the token stream is structurally invalid (unbalanced branches,
        unpaired ring bonds, dangling bonds...).
    """
    return SmilesParser(smiles).run()


def is_parsable(smiles: str) -> bool:
    """Return ``True`` if :func:`parse` succeeds on *smiles*."""
    try:
        parse(smiles)
    except Exception:
        return False
    return True
