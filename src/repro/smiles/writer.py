"""Molecular graph → SMILES writer.

The writer performs a depth-first traversal of a
:class:`~repro.smiles.graph.MolecularGraph` and emits a valid SMILES string.
It is the inverse of the parser up to traversal order: ``parse(write(g))``
yields a graph isomorphic to ``g`` (property-tested), and
``write(parse(s))`` yields a SMILES describing the same molecule as ``s``.

Two ring-numbering policies are supported because they matter for the paper's
preprocessing experiment (Section IV-A):

``"sequential"``
    Every ring bond receives a fresh, monotonically increasing identifier —
    the style produced by many enumeration pipelines and by the paper's
    Dibenzoylmethane example (``C1=CC=C(C=C1)...C2=CC=CC=C2``).  This is the
    *un-optimized* numbering the synthetic datasets use.

``"reuse"``
    Identifiers are recycled as soon as their ring closes, always taking the
    lowest free value.  This approximates what the ZSMILES preprocessor
    produces and is useful for testing.
"""

from __future__ import annotations

from typing import Dict, List, Literal, Optional, Set, Tuple

from ..errors import ValidationError
from .graph import Atom, Bond, BondOrder, MolecularGraph

RingPolicy = Literal["sequential", "reuse"]


def _format_ring_id(ring_id: int) -> str:
    """Format a ring identifier as a SMILES ring-bond token (``3`` or ``%12``)."""
    if ring_id < 0:
        raise ValidationError(f"negative ring id {ring_id}")
    if ring_id <= 9:
        return str(ring_id)
    if ring_id <= 99:
        return f"%{ring_id:02d}"
    raise ValidationError(f"ring id {ring_id} exceeds the SMILES %nn limit")


def _charge_text(charge: int) -> str:
    if charge == 0:
        return ""
    sign = "+" if charge > 0 else "-"
    magnitude = abs(charge)
    if magnitude == 1:
        return sign
    if magnitude <= 3:
        return sign * magnitude
    return f"{sign}{magnitude}"


def format_atom(atom: Atom) -> str:
    """Render a single atom as SMILES text (bracketed when required)."""
    symbol = atom.smiles_symbol()
    if not atom.needs_bracket():
        return symbol
    parts: List[str] = ["["]
    if atom.isotope is not None:
        parts.append(str(atom.isotope))
    parts.append(symbol)
    if atom.chirality:
        parts.append(atom.chirality)
    if atom.explicit_h is not None:
        if atom.explicit_h == 1:
            parts.append("H")
        elif atom.explicit_h > 1:
            parts.append(f"H{atom.explicit_h}")
    parts.append(_charge_text(atom.charge))
    if atom.atom_class is not None:
        parts.append(f":{atom.atom_class}")
    parts.append("]")
    return "".join(parts)


def _bond_text(order: BondOrder, a: Atom, b: Atom) -> str:
    """Bond symbol to emit between *a* and *b*, empty when the default applies."""
    if order is BondOrder.SINGLE:
        # A single bond between two aromatic atoms must be written explicitly,
        # otherwise it would be read back as aromatic.
        if a.aromatic and b.aromatic:
            return "-"
        return ""
    if order is BondOrder.AROMATIC:
        if a.aromatic and b.aromatic:
            return ""
        return ":"
    return order.symbol


class _RingIdAllocator:
    """Hands out ring-bond identifiers under a given policy."""

    def __init__(self, policy: RingPolicy):
        self.policy = policy
        self._next_sequential = 1
        self._in_use: Set[int] = set()

    def allocate(self) -> int:
        if self.policy == "sequential":
            ring_id = self._next_sequential
            self._next_sequential += 1
            if ring_id > 99:
                # Extremely ring-dense synthetic molecule: fall back to reuse.
                ring_id = self._lowest_free()
            self._in_use.add(ring_id)
            return ring_id
        ring_id = self._lowest_free()
        self._in_use.add(ring_id)
        return ring_id

    def release(self, ring_id: int) -> None:
        self._in_use.discard(ring_id)

    def _lowest_free(self) -> int:
        ring_id = 1
        while ring_id in self._in_use:
            ring_id += 1
        if ring_id > 99:
            raise ValidationError("more than 99 simultaneously open rings")
        return ring_id


class SmilesWriter:
    """Depth-first SMILES writer for a single :class:`MolecularGraph`."""

    def __init__(self, graph: MolecularGraph, ring_policy: RingPolicy = "sequential"):
        self.graph = graph
        self.ring_policy = ring_policy

    # ------------------------------------------------------------------ #
    def write(self) -> str:
        """Serialize the whole graph (all components, joined by ``.``)."""
        components = self.graph.connected_components()
        fragments = [self._write_component(comp) for comp in components]
        return ".".join(fragments)

    # ------------------------------------------------------------------ #
    def _write_component(self, component: List[int]) -> str:
        if not component:
            return ""
        start = self._pick_start(component)
        visited: Set[int] = set()
        ring_bonds: Dict[Tuple[int, int], int] = {}
        allocator = _RingIdAllocator(self.ring_policy)
        # Pre-compute the DFS tree and the back edges so ring digits can be
        # emitted on both endpoints in one pass.
        order, tree_children, back_edges = self._dfs_structure(start)
        # Map: atom -> list of (other endpoint, bond) back edges touching it.
        ring_touch: Dict[int, List[Bond]] = {idx: [] for idx in order}
        for bond in back_edges:
            ring_touch[bond.a].append(bond)
            ring_touch[bond.b].append(bond)

        out: List[str] = []
        self._emit(start, None, tree_children, ring_touch, ring_bonds, allocator, out, visited)
        return "".join(out)

    def _pick_start(self, component: List[int]) -> int:
        """Prefer a terminal (degree-1) heavy atom, as the paper's Section II describes."""
        terminals = [idx for idx in component if self.graph.degree(idx) <= 1]
        return min(terminals) if terminals else min(component)

    def _dfs_structure(
        self, start: int
    ) -> Tuple[List[int], Dict[int, List[int]], List[Bond]]:
        """Compute DFS pre-order, tree children and back-edge bonds from *start*."""
        order: List[int] = []
        tree_children: Dict[int, List[int]] = {}
        back_edges: List[Bond] = []
        seen_edges: Set[Tuple[int, int]] = set()
        visited: Set[int] = set()

        stack: List[Tuple[int, Optional[int]]] = [(start, None)]
        while stack:
            node, parent = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            order.append(node)
            tree_children.setdefault(node, [])
            if parent is not None:
                tree_children.setdefault(parent, []).append(node)
            # Deterministic order: visit lower-index neighbours first.
            neighbors = sorted(self.graph.neighbors(node), reverse=True)
            for nbr in neighbors:
                edge_key = (node, nbr) if node <= nbr else (nbr, node)
                if nbr == parent and edge_key not in seen_edges:
                    seen_edges.add(edge_key)
                    continue
                if nbr in visited:
                    if edge_key not in seen_edges:
                        seen_edges.add(edge_key)
                        bond = self.graph.get_bond(node, nbr)
                        assert bond is not None
                        back_edges.append(bond)
                    continue
                stack.append((nbr, node))
        # Tree-children were appended in stack pop order; re-sort for determinism.
        for node in tree_children:
            tree_children[node].sort()
        return order, tree_children, back_edges

    # ------------------------------------------------------------------ #
    def _emit(
        self,
        node: int,
        parent: Optional[int],
        tree_children: Dict[int, List[int]],
        ring_touch: Dict[int, List[Bond]],
        ring_bonds: Dict[Tuple[int, int], int],
        allocator: _RingIdAllocator,
        out: List[str],
        visited: Set[int],
    ) -> None:
        visited.add(node)
        atom = self.graph.atoms[node]
        if parent is not None:
            bond = self.graph.get_bond(parent, node)
            assert bond is not None
            out.append(_bond_text(bond.order, self.graph.atoms[parent], atom))
        out.append(format_atom(atom))

        # Ring-closure digits attached to this atom.
        for bond in ring_touch.get(node, []):
            key = bond.key()
            other = bond.other(node)
            if key not in ring_bonds:
                ring_id = allocator.allocate()
                ring_bonds[key] = ring_id
                out.append(
                    _bond_text(bond.order, atom, self.graph.atoms[other])
                )
                out.append(_format_ring_id(ring_id))
            else:
                ring_id = ring_bonds[key]
                out.append(_format_ring_id(ring_id))
                allocator.release(ring_id)

        children = [c for c in tree_children.get(node, []) if c not in visited]
        for i, child in enumerate(children):
            last = i == len(children) - 1
            if not last:
                out.append("(")
            self._emit(
                child, node, tree_children, ring_touch, ring_bonds, allocator, out, visited
            )
            if not last:
                out.append(")")


def write(graph: MolecularGraph, ring_policy: RingPolicy = "sequential") -> str:
    """Serialize *graph* to SMILES using the given ring numbering policy."""
    return SmilesWriter(graph, ring_policy).write()
