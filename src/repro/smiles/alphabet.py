"""SMILES alphabet definitions.

This module centralizes every character class the SMILES grammar uses
(Weininger 1988, OpenSMILES specification subset).  The rest of the package —
the tokenizer, the dictionary pre-population policies and the codec symbol
allocator — all consult these tables so there is exactly one place that
defines "the SMILES alphabet" referenced throughout the paper (Section IV-B).
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

# --------------------------------------------------------------------------- #
# Element symbols
# --------------------------------------------------------------------------- #

#: Organic-subset elements that may be written outside brackets.
ORGANIC_SUBSET: Tuple[str, ...] = (
    "B", "C", "N", "O", "P", "S", "F", "Cl", "Br", "I",
)

#: Aromatic organic-subset atoms (lower case, outside brackets).
AROMATIC_ORGANIC: Tuple[str, ...] = ("b", "c", "n", "o", "p", "s")

#: Aromatic symbols only valid inside brackets.
AROMATIC_BRACKET_ONLY: Tuple[str, ...] = ("se", "as", "te", "si")

#: Every element symbol accepted inside a bracket atom.  This is the full
#: periodic table as of IUPAC 2016; two-character symbols must be matched
#: before one-character ones when tokenizing.
ALL_ELEMENTS: Tuple[str, ...] = (
    "H", "He", "Li", "Be", "B", "C", "N", "O", "F", "Ne",
    "Na", "Mg", "Al", "Si", "P", "S", "Cl", "Ar", "K", "Ca",
    "Sc", "Ti", "V", "Cr", "Mn", "Fe", "Co", "Ni", "Cu", "Zn",
    "Ga", "Ge", "As", "Se", "Br", "Kr", "Rb", "Sr", "Y", "Zr",
    "Nb", "Mo", "Tc", "Ru", "Rh", "Pd", "Ag", "Cd", "In", "Sn",
    "Sb", "Te", "I", "Xe", "Cs", "Ba", "La", "Ce", "Pr", "Nd",
    "Pm", "Sm", "Eu", "Gd", "Tb", "Dy", "Ho", "Er", "Tm", "Yb",
    "Lu", "Hf", "Ta", "W", "Re", "Os", "Ir", "Pt", "Au", "Hg",
    "Tl", "Pb", "Bi", "Po", "At", "Rn", "Fr", "Ra", "Ac", "Th",
    "Pa", "U", "Np", "Pu", "Am", "Cm", "Bk", "Cf", "Es", "Fm",
    "Md", "No", "Lr", "Rf", "Db", "Sg", "Bh", "Hs", "Mt", "Ds",
    "Rg", "Cn", "Nh", "Fl", "Mc", "Lv", "Ts", "Og",
)

#: Wildcard atom.
WILDCARD = "*"

# --------------------------------------------------------------------------- #
# Structural characters
# --------------------------------------------------------------------------- #

#: Bond symbols.  ``/`` and ``\\`` encode cis/trans configuration, ``-`` single,
#: ``=`` double, ``#`` triple, ``$`` quadruple, ``:`` aromatic, ``~`` any.
BOND_SYMBOLS: Tuple[str, ...] = ("-", "=", "#", "$", ":", "/", "\\", "~")

#: Branch delimiters.
BRANCH_OPEN = "("
BRANCH_CLOSE = ")"

#: Bracket-atom delimiters.
BRACKET_OPEN = "["
BRACKET_CLOSE = "]"

#: Ring-bond two-digit escape.
RING_PERCENT = "%"

#: Disconnected-structure separator.
DOT = "."

#: Chirality marker used inside brackets.
CHIRALITY = "@"

#: Charge markers inside brackets.
CHARGE_PLUS = "+"
CHARGE_MINUS = "-"

#: Digits used for ring bonds, charges and isotopes.
DIGITS: Tuple[str, ...] = tuple("0123456789")

# --------------------------------------------------------------------------- #
# Aggregate alphabets
# --------------------------------------------------------------------------- #


def _build_smiles_alphabet() -> FrozenSet[str]:
    """Collect every single character that may appear in a valid SMILES string."""
    chars: set[str] = set()
    for sym in ORGANIC_SUBSET + AROMATIC_ORGANIC + ALL_ELEMENTS:
        chars.update(sym)
    chars.update(AROMATIC_BRACKET_ONLY[0])  # 's', 'e' already covered by elements
    for sym in AROMATIC_BRACKET_ONLY:
        chars.update(sym)
    chars.update(BOND_SYMBOLS)
    chars.update(DIGITS)
    chars.update(
        {
            BRANCH_OPEN,
            BRANCH_CLOSE,
            BRACKET_OPEN,
            BRACKET_CLOSE,
            RING_PERCENT,
            DOT,
            CHIRALITY,
            CHARGE_PLUS,
            CHARGE_MINUS,
            WILDCARD,
            "H",  # explicit hydrogen count inside brackets
        }
    )
    return frozenset(chars)


#: Every single character that can legally appear in a SMILES string.  This is
#: the set the paper calls "the SMILES alphabet" when pre-populating the
#: dictionary (Section IV-B).
SMILES_ALPHABET: FrozenSet[str] = _build_smiles_alphabet()

#: All printable ASCII characters (0x20–0x7E) — the paper's "printable"
#: pre-population policy.
PRINTABLE_ASCII: FrozenSet[str] = frozenset(chr(c) for c in range(0x20, 0x7F))

#: Printable characters that are *not* part of the SMILES alphabet.  These are
#: the first code points handed out to multi-character dictionary entries so
#: the compressed output remains readable ASCII as long as possible.
NON_SMILES_PRINTABLE: FrozenSet[str] = PRINTABLE_ASCII - SMILES_ALPHABET - {" "}

#: Latin-1 code points 0x80–0xFF used once the non-SMILES printable characters
#: are exhausted — the paper's "extended ASCII characters".  U+0085 (NEL) is
#: excluded because ``str.splitlines`` treats it as a line boundary, which
#: would break the one-record-per-line contract.
EXTENDED_ASCII: Tuple[str, ...] = tuple(
    chr(c) for c in range(0x80, 0x100) if c != 0x85
)

#: The escape marker used by the codec (Section IV-D): a space followed by the
#: literal character.  Space never appears inside a SMILES string, which is why
#: it is safe to reserve.
ESCAPE_CHAR = " "


def is_smiles_char(ch: str) -> bool:
    """Return ``True`` if *ch* is a single character of the SMILES alphabet."""
    return ch in SMILES_ALPHABET


def symbol_code_points(reserved: FrozenSet[str] = frozenset()) -> Tuple[str, ...]:
    """Return the ordered pool of code points available for dictionary symbols.

    Parameters
    ----------
    reserved:
        Characters that must not be used as symbols (typically the characters a
        pre-population policy maps to themselves).

    Returns
    -------
    tuple of str
        Non-SMILES printable ASCII first (keeps output readable), then the
        Latin-1 extended range, excluding anything in *reserved*, the escape
        character and the newline family.
    """
    forbidden = set(reserved) | {ESCAPE_CHAR, "\n", "\r", "\t"}
    ordered = sorted(NON_SMILES_PRINTABLE) + list(EXTENDED_ASCII)
    return tuple(ch for ch in ordered if ch not in forbidden)
