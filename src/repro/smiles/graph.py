"""Molecular graph data structures.

The parser converts a SMILES string into a :class:`MolecularGraph`; the writer
converts a graph back into a SMILES string; the synthetic dataset generators
build graphs directly and then serialize them.  The representation is a plain
adjacency structure — no chemistry engine is required for the compression
experiments, but enough semantics (element, aromaticity, charge, isotope,
chirality, bond order) are retained for validation and for generating
realistic, diverse SMILES text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ValidationError


class BondOrder(enum.Enum):
    """Bond types distinguished by the SMILES grammar."""

    SINGLE = "-"
    DOUBLE = "="
    TRIPLE = "#"
    QUADRUPLE = "$"
    AROMATIC = ":"
    UP = "/"
    DOWN = "\\"
    ANY = "~"

    @property
    def symbol(self) -> str:
        """The SMILES character for this bond order."""
        return self.value

    @property
    def valence_units(self) -> int:
        """Number of valence units this bond consumes on each endpoint."""
        return {
            BondOrder.SINGLE: 1,
            BondOrder.DOUBLE: 2,
            BondOrder.TRIPLE: 3,
            BondOrder.QUADRUPLE: 4,
            BondOrder.AROMATIC: 1,
            BondOrder.UP: 1,
            BondOrder.DOWN: 1,
            BondOrder.ANY: 1,
        }[self]


#: Default valences for the organic subset (used by the rough valence check
#: and by the generators to keep molecules chemically plausible).
DEFAULT_VALENCE: Dict[str, Tuple[int, ...]] = {
    "B": (3,),
    "C": (4,),
    "N": (3, 5),
    "O": (2,),
    "P": (3, 5),
    "S": (2, 4, 6),
    "F": (1,),
    "Cl": (1,),
    "Br": (1,),
    "I": (1,),
    "*": (8,),
    "H": (1,),
}


@dataclass
class Atom:
    """One heavy atom (or wildcard) in a molecular graph.

    Attributes
    ----------
    element:
        Element symbol with canonical capitalization (``"C"``, ``"Cl"``...).
    aromatic:
        ``True`` if the atom is written lower-case in SMILES.
    charge:
        Formal charge.
    isotope:
        Isotope number, or ``None`` for the natural mixture.
    explicit_h:
        Explicit hydrogen count from a bracket atom, or ``None`` if implicit.
    chirality:
        ``"@"`` / ``"@@"`` / extended chirality tag, or ``None``.
    atom_class:
        SMILES atom-class annotation (``[CH4:1]``), or ``None``.
    bracket:
        Force bracket notation even when the organic-subset shorthand would be
        legal (set automatically when any bracket-only field is present).
    """

    element: str
    aromatic: bool = False
    charge: int = 0
    isotope: Optional[int] = None
    explicit_h: Optional[int] = None
    chirality: Optional[str] = None
    atom_class: Optional[int] = None
    bracket: bool = False

    def needs_bracket(self) -> bool:
        """Return ``True`` if this atom must be written as a bracket atom."""
        if self.bracket:
            return True
        if self.element not in DEFAULT_VALENCE or self.element in ("*", "H"):
            if self.element == "*":
                pass  # wildcard can be written bare
            else:
                return True
        return (
            self.charge != 0
            or self.isotope is not None
            or self.explicit_h is not None
            or self.chirality is not None
            or self.atom_class is not None
        )

    def smiles_symbol(self) -> str:
        """Element symbol with aromatic lower-casing applied."""
        return self.element.lower() if self.aromatic else self.element


@dataclass(frozen=True)
class Bond:
    """An undirected bond between two atom indices."""

    a: int
    b: int
    order: BondOrder = BondOrder.SINGLE

    def other(self, idx: int) -> int:
        """Return the endpoint that is not *idx*."""
        if idx == self.a:
            return self.b
        if idx == self.b:
            return self.a
        raise ValueError(f"atom {idx} is not an endpoint of {self}")

    def key(self) -> Tuple[int, int]:
        """Canonical (min, max) endpoint tuple."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class MolecularGraph:
    """Undirected multigraph of atoms and bonds.

    The graph may contain several connected components (SMILES ``.``
    disconnections).  Atom indices are dense integers assigned in insertion
    order.
    """

    def __init__(self) -> None:
        self._atoms: List[Atom] = []
        self._bonds: List[Bond] = []
        self._adjacency: Dict[int, List[int]] = {}
        self._bond_index: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_atom(self, atom: Atom) -> int:
        """Append *atom* and return its index."""
        idx = len(self._atoms)
        self._atoms.append(atom)
        self._adjacency[idx] = []
        return idx

    def add_bond(self, a: int, b: int, order: BondOrder = BondOrder.SINGLE) -> Bond:
        """Create a bond between atom indices *a* and *b*.

        Raises
        ------
        ValidationError
            If either endpoint does not exist, the endpoints are equal, or the
            bond already exists.
        """
        if a == b:
            raise ValidationError(f"self-bond on atom {a}")
        for idx in (a, b):
            if not 0 <= idx < len(self._atoms):
                raise ValidationError(f"bond references missing atom {idx}")
        key = (a, b) if a <= b else (b, a)
        if key in self._bond_index:
            raise ValidationError(f"duplicate bond between {a} and {b}")
        bond = Bond(a, b, order)
        self._bond_index[key] = len(self._bonds)
        self._bonds.append(bond)
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return bond

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def atoms(self) -> List[Atom]:
        """List of atoms in insertion order."""
        return self._atoms

    @property
    def bonds(self) -> List[Bond]:
        """List of bonds in insertion order."""
        return self._bonds

    def atom_count(self) -> int:
        """Number of atoms."""
        return len(self._atoms)

    def bond_count(self) -> int:
        """Number of bonds."""
        return len(self._bonds)

    def neighbors(self, idx: int) -> List[int]:
        """Atom indices bonded to *idx*."""
        return list(self._adjacency[idx])

    def degree(self, idx: int) -> int:
        """Number of bonds incident on *idx*."""
        return len(self._adjacency[idx])

    def get_bond(self, a: int, b: int) -> Optional[Bond]:
        """Return the bond between *a* and *b*, or ``None``."""
        key = (a, b) if a <= b else (b, a)
        pos = self._bond_index.get(key)
        return None if pos is None else self._bonds[pos]

    def bonded_valence(self, idx: int) -> int:
        """Sum of valence units of bonds incident on atom *idx*."""
        total = 0
        for nbr in self._adjacency[idx]:
            bond = self.get_bond(idx, nbr)
            assert bond is not None
            total += bond.order.valence_units
        return total

    def connected_components(self) -> List[List[int]]:
        """Return atom-index lists, one per connected component, in discovery order."""
        seen: set[int] = set()
        components: List[List[int]] = []
        for start in range(len(self._atoms)):
            if start in seen:
                continue
            stack = [start]
            comp: List[int] = []
            seen.add(start)
            while stack:
                node = stack.pop()
                comp.append(node)
                for nbr in self._adjacency[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        stack.append(nbr)
            components.append(sorted(comp))
        return components

    def ring_bond_count(self) -> int:
        """Number of independent cycles (cyclomatic number) in the graph."""
        return len(self._bonds) - len(self._atoms) + len(self.connected_components())

    def iter_ring_memberships(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(a, b)`` endpoint pairs for bonds that lie on at least one cycle.

        A bond is a ring bond iff removing it keeps its endpoints connected.
        This is only used by validation and dataset statistics, so an O(B·(V+E))
        implementation is acceptable.
        """
        for bond in self._bonds:
            if self._still_connected_without(bond):
                yield bond.a, bond.b

    def _still_connected_without(self, bond: Bond) -> bool:
        target = bond.b
        stack = [bond.a]
        seen = {bond.a}
        while stack:
            node = stack.pop()
            if node == target:
                return True
            for nbr in self._adjacency[node]:
                if node == bond.a and nbr == bond.b:
                    continue
                if node == bond.b and nbr == bond.a:
                    continue
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return False

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._atoms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MolecularGraph(atoms={len(self._atoms)}, bonds={len(self._bonds)}, "
            f"rings={self.ring_bond_count()})"
        )
