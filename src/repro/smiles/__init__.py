"""SMILES toolkit substrate.

This subpackage provides everything the rest of the library needs to work
with SMILES strings without an external cheminformatics dependency:
tokenization, parsing to a molecular graph, writing graphs back to SMILES,
validation, and ring-bond span analysis.
"""

from .alphabet import (
    ESCAPE_CHAR,
    EXTENDED_ASCII,
    NON_SMILES_PRINTABLE,
    PRINTABLE_ASCII,
    SMILES_ALPHABET,
    is_smiles_char,
    symbol_code_points,
)
from .graph import Atom, Bond, BondOrder, MolecularGraph
from .parser import SmilesParser, is_parsable, parse
from .rings import RingSpan, max_simultaneous_rings, pair_ring_bonds, ring_spans, ring_statistics
from .tokenizer import Token, TokenType, detokenize, is_tokenizable, iter_tokens, tokenize
from .validate import ValidationReport, is_valid, validate
from .writer import SmilesWriter, format_atom, write

__all__ = [
    "ESCAPE_CHAR",
    "EXTENDED_ASCII",
    "NON_SMILES_PRINTABLE",
    "PRINTABLE_ASCII",
    "SMILES_ALPHABET",
    "is_smiles_char",
    "symbol_code_points",
    "Atom",
    "Bond",
    "BondOrder",
    "MolecularGraph",
    "SmilesParser",
    "is_parsable",
    "parse",
    "RingSpan",
    "max_simultaneous_rings",
    "pair_ring_bonds",
    "ring_spans",
    "ring_statistics",
    "Token",
    "TokenType",
    "detokenize",
    "is_tokenizable",
    "iter_tokens",
    "tokenize",
    "ValidationReport",
    "is_valid",
    "validate",
    "SmilesWriter",
    "format_atom",
    "write",
]
