"""SMILES validation utilities.

Three levels of checking are provided, in increasing strictness:

1. :func:`check_characters` — every character belongs to the SMILES alphabet.
2. :func:`check_structure` — the string tokenizes and parses (balanced
   branches, paired ring bonds, no dangling bonds).
3. :func:`check_valence` — a rough valence sanity check on the parsed graph
   (organic-subset atoms must not exceed their maximum common valence).

:func:`validate` combines them and returns a structured report instead of
raising, which is what the dataset generators and the CLI use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ParseError, TokenizationError
from .alphabet import SMILES_ALPHABET
from .graph import DEFAULT_VALENCE, MolecularGraph
from .parser import parse


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`.

    Attributes
    ----------
    smiles:
        The input string.
    valid:
        ``True`` when no problem of any severity was found.
    errors:
        Human-readable descriptions of fatal problems.
    warnings:
        Non-fatal oddities (e.g. suspicious valence) that do not prevent
        compression.
    """

    smiles: str
    valid: bool = True
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def add_error(self, message: str) -> None:
        self.errors.append(message)
        self.valid = False

    def add_warning(self, message: str) -> None:
        self.warnings.append(message)


def check_characters(smiles: str) -> List[str]:
    """Return a list of error messages for characters outside the SMILES alphabet."""
    problems: List[str] = []
    for pos, ch in enumerate(smiles):
        if ch not in SMILES_ALPHABET:
            problems.append(f"character {ch!r} at position {pos} is not a SMILES character")
    return problems


def check_structure(smiles: str) -> List[str]:
    """Return error messages if the string fails to tokenize or parse."""
    try:
        parse(smiles)
    except (TokenizationError, ParseError) as exc:
        return [str(exc)]
    return []


def check_valence(graph: MolecularGraph) -> List[str]:
    """Return warnings for atoms whose bonded valence exceeds their maximum.

    Charged or bracket atoms are skipped: their valence rules are too varied
    for a rough check and they are rare in screening libraries.
    """
    warnings: List[str] = []
    for idx, atom in enumerate(graph.atoms):
        if atom.bracket or atom.charge != 0:
            continue
        allowed = DEFAULT_VALENCE.get(atom.element)
        if allowed is None:
            continue
        bonded = graph.bonded_valence(idx)
        # Aromatic atoms in SMILES carry one implicit extra ring-bond share.
        slack = 1 if atom.aromatic else 0
        if bonded > max(allowed) + slack:
            warnings.append(
                f"atom {idx} ({atom.element}) has bonded valence {bonded} "
                f"exceeding maximum {max(allowed)}"
            )
    return warnings


def validate(smiles: str, valence: bool = True) -> ValidationReport:
    """Run all validation levels on *smiles* and return a :class:`ValidationReport`."""
    report = ValidationReport(smiles=smiles)
    if not smiles.strip():
        report.add_error("empty SMILES string")
        return report
    for message in check_characters(smiles):
        report.add_error(message)
    if report.errors:
        return report
    structural = check_structure(smiles)
    for message in structural:
        report.add_error(message)
    if report.errors or not valence:
        return report
    graph = parse(smiles)
    for message in check_valence(graph):
        report.add_warning(message)
    return report


def is_valid(smiles: str) -> bool:
    """Return ``True`` when *smiles* passes character and structural validation."""
    return validate(smiles, valence=False).valid
