"""Escape encoding for characters missing from the dictionary (Section IV-D).

A character that cannot be produced by any dictionary entry is written as the
escape marker (a space — a character that never occurs inside a SMILES
string) followed by the literal character.  The decompressor treats a space as
"copy the next character verbatim".
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..errors import DecompressionError
from ..smiles.alphabet import ESCAPE_CHAR


def escape_char(ch: str) -> str:
    """Return the escaped two-character encoding of a single character."""
    if len(ch) != 1:
        raise ValueError(f"escape_char expects a single character, got {ch!r}")
    if ch in ("\n", "\r"):
        raise ValueError("line terminators cannot be escaped inside a record")
    return ESCAPE_CHAR + ch


def iter_compressed_units(compressed: str) -> Iterator[Tuple[str, bool]]:
    """Split a compressed line into ``(unit, is_escape)`` pairs.

    A unit is either a single dictionary symbol (``is_escape=False``) or the
    literal character that followed an escape marker (``is_escape=True``).

    Raises
    ------
    DecompressionError
        If the line ends with a dangling escape marker.
    """
    i = 0
    n = len(compressed)
    while i < n:
        ch = compressed[i]
        if ch == ESCAPE_CHAR:
            if i + 1 >= n:
                raise DecompressionError("dangling escape marker at end of record")
            yield compressed[i + 1], True
            i += 2
        else:
            yield ch, False
            i += 1


def escaped_length(text: str, coverable: set) -> int:
    """Output length if every character outside *coverable* must be escaped.

    Diagnostic helper used to reason about worst-case expansion: with the
    SMILES-alphabet pre-population, ``coverable`` contains every SMILES
    character, so the worst case equals the input length (ratio 1.0).
    """
    total = 0
    for ch in text:
        total += 1 if ch in coverable else 2
    return total
