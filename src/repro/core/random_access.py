"""Random access into compressed SMILES files (the "flat" layout).

The whole point of keeping one compressed record per line (Section I) is that
domain experts can pull individual molecules or slices out of a multi-TB
library without decompressing the file.  This module provides:

* :class:`LineIndex` — byte offsets of every record, buildable in one
  sequential pass and persistable next to the data file,
* :class:`RandomAccessReader` — O(1) record lookups through the index, with
  optional on-the-fly decompression via a :class:`ZSmilesCodec`.

This flat layout (``.zsmi`` data + ``.zsx`` sidecar index, one seek per
record) is the documented *fallback* path: at production scale the
block-compressed ``.zss`` container (:mod:`repro.store`) serves the same
:class:`~repro.store.protocol.RecordReader` protocol with a binary footer
index, per-block checksums and cached block decode.  Code that serves
records should accept the protocol and let
:func:`repro.store.open_reader` pick the implementation by suffix.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from ..errors import RandomAccessError
from .codec import ZSmilesCodec

PathLike = Union[str, Path]

#: Default extension for persisted line indexes.
INDEX_SUFFIX = ".zsx"


@dataclass
class LineIndex:
    """Byte offsets of each record in a line-oriented file.

    ``offsets[i]`` is the byte position of the first byte of record *i*;
    ``offsets[n]`` (one past the last record) equals the file size, so record
    *i* spans ``offsets[i]:offsets[i+1]`` including its newline.
    """

    offsets: List[int]

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, path: PathLike) -> "LineIndex":
        """Scan *path* once and record the byte offset of every record."""
        offsets = [0]
        with open(path, "rb") as handle:
            for raw in handle:
                offsets.append(offsets[-1] + len(raw))
        return cls(offsets=offsets)

    @property
    def line_count(self) -> int:
        """Number of records in the indexed file."""
        return len(self.offsets) - 1

    def span(self, line: int) -> tuple[int, int]:
        """Byte span ``(start, end)`` of record *line* (newline included)."""
        if not 0 <= line < self.line_count:
            raise RandomAccessError(
                f"line {line} out of range [0, {self.line_count})"
            )
        return self.offsets[line], self.offsets[line + 1]

    # ------------------------------------------------------------------ #
    # Persistence: a compact text format, one offset per line.
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Persist the index (one decimal offset per line, header included)."""
        buffer = io.StringIO()
        buffer.write(f"# ZSMILES line index; lines = {self.line_count}\n")
        for offset in self.offsets:
            buffer.write(f"{offset}\n")
        Path(path).write_text(buffer.getvalue(), encoding="ascii")

    @classmethod
    def load(cls, path: PathLike) -> "LineIndex":
        """Load an index previously written by :meth:`save`."""
        offsets: List[int] = []
        for line in Path(path).read_text(encoding="ascii").splitlines():
            if not line or line.startswith("#"):
                continue
            try:
                offsets.append(int(line))
            except ValueError as exc:
                raise RandomAccessError(f"malformed index line {line!r}") from exc
        if not offsets or offsets[0] != 0:
            raise RandomAccessError("index must start at offset 0")
        if any(b < a for a, b in zip(offsets, offsets[1:])):
            raise RandomAccessError("index offsets must be non-decreasing")
        return cls(offsets=offsets)

    @staticmethod
    def default_path(data_path: PathLike) -> Path:
        """Conventional sidecar path for the index of *data_path*."""
        data_path = Path(data_path)
        return data_path.with_suffix(data_path.suffix + INDEX_SUFFIX)


class RandomAccessReader:
    """Random access to the records of a (compressed or plain) SMILES file."""

    def __init__(
        self,
        path: PathLike,
        index: Optional[LineIndex] = None,
        codec: Optional[ZSmilesCodec] = None,
        encoding: str = "latin-1",
    ):
        self.path = Path(path)
        self.index = index if index is not None else LineIndex.build(self.path)
        self.codec = codec
        self.encoding = encoding
        self._handle: Optional[io.BufferedReader] = None

    # ------------------------------------------------------------------ #
    # Context manager / lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "RandomAccessReader":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def open(self) -> None:
        """Open the underlying file (idempotent)."""
        if self._handle is None:
            self._handle = open(self.path, "rb")

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.index.line_count

    def raw_line(self, line: int) -> str:
        """The stored record at *line* (compressed text if the file is compressed)."""
        start, end = self.index.span(line)
        self.open()
        assert self._handle is not None
        self._handle.seek(start)
        data = self._handle.read(end - start)
        return data.decode(self.encoding).rstrip("\r\n")

    def line(self, line: int) -> str:
        """The record at *line*, decompressed when a codec was supplied."""
        raw = self.raw_line(line)
        if self.codec is None:
            return raw
        return self.codec.decompress(raw)

    def __getitem__(self, line: int) -> str:
        return self.line(line)

    def lines(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records by index, preserving request order."""
        return [self.line(i) for i in indices]

    # RecordReader-protocol names (shared with repro.store readers).
    def get(self, line: int) -> str:
        """Alias of :meth:`line` (:class:`~repro.store.RecordReader` surface)."""
        return self.line(line)

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """Alias of :meth:`lines` (:class:`~repro.store.RecordReader` surface)."""
        return self.lines(indices)

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive)."""
        if start < 0 or stop < start:
            raise RandomAccessError(f"invalid slice [{start}, {stop})")
        stop = min(stop, len(self))
        return [self.line(i) for i in range(start, stop)]

    def sample(self, n: int, seed: Optional[int] = None) -> tuple:
        """Uniform random records without replacement: ``(indices, records)``.

        Same ``random.Random(seed).sample`` semantics and clamping as the
        server's ``GET /records:sample`` and the packed readers' ``sample``,
        so the flat layout is transport-interchangeable for seeded draws.
        """
        if n < 0:
            raise RandomAccessError(f"sample size must be >= 0, got {n}")
        total = len(self)
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(total), min(n, total)))
        return indices, self.get_many(indices)

    def iter_all(self) -> Iterator[str]:
        """Iterate over every record in order (decompressing when applicable)."""
        for i in range(len(self)):
            yield self.line(i)
