"""ZSMILES core: the paper's primary contribution (Section IV)."""

from .codec import CodecStats, ZSmilesCodec
from .compressor import CompressionRecord, Compressor, ParseStrategy, compression_ratio
from .decompressor import Decompressor
from .escape import escape_char, escaped_length, iter_compressed_units
from .random_access import LineIndex, RandomAccessReader
from .shortest_path import ParseStep, greedy_parse, optimal_parse, parse_cost, parse_consumes
from .streaming import (
    FileStats,
    compress_file,
    decompress_file,
    read_lines,
    verify_separability,
    write_lines,
)

__all__ = [
    "CodecStats",
    "ZSmilesCodec",
    "CompressionRecord",
    "Compressor",
    "ParseStrategy",
    "compression_ratio",
    "Decompressor",
    "escape_char",
    "escaped_length",
    "iter_compressed_units",
    "LineIndex",
    "RandomAccessReader",
    "ParseStep",
    "greedy_parse",
    "optimal_parse",
    "parse_cost",
    "parse_consumes",
    "FileStats",
    "compress_file",
    "decompress_file",
    "read_lines",
    "verify_separability",
    "write_lines",
]
