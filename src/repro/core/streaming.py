"""File-level compression / decompression with line separability.

The storage contract of ZSMILES (Section I, "random access" requirement) is
that the compressed file has exactly one record per line, on the same line
number as the input record.  The ``.smi`` ↔ ``.zsmi`` file flows of Figure 3
are implemented by :meth:`repro.engine.ZSmilesEngine.compress_file` /
``decompress_file``; the free functions here are kept as thin shims for
callers that still hold a bare :class:`ZSmilesCodec`.  Streaming is
batch-at-a-time, so arbitrarily large libraries never need to fit in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from ..errors import CodecError
from .codec import ZSmilesCodec

PathLike = Union[str, Path]

#: Default extension for compressed SMILES files.
ZSMI_SUFFIX = ".zsmi"
#: Default extension for plain SMILES files.
SMI_SUFFIX = ".smi"


@dataclass
class FileStats:
    """Result of a file-level compression or decompression run."""

    input_path: Path
    output_path: Path
    lines: int
    input_bytes: int
    output_bytes: int

    @property
    def ratio(self) -> float:
        """Output bytes / input bytes."""
        if self.input_bytes == 0:
            return 1.0
        return self.output_bytes / self.input_bytes


#: Encoding used for ``.smi`` / ``.zsmi`` files.  Every character the codec can
#: emit is at most U+00FF, so Latin-1 stores each symbol in exactly one byte —
#: this is what makes the on-disk sizes match the paper's "extended ASCII"
#: accounting.
FILE_ENCODING = "latin-1"


def read_lines(path: PathLike, encoding: str = FILE_ENCODING) -> Iterator[str]:
    """Yield the records of a line-oriented file, without terminators."""
    with open(path, "r", encoding=encoding, newline="") as handle:
        for raw in handle:
            yield raw.rstrip("\r\n")


def write_lines(path: PathLike, lines: Iterable[str], encoding: str = FILE_ENCODING) -> int:
    """Write *lines* one per line; return the number of records written."""
    count = 0
    with open(path, "w", encoding=encoding, newline="\n") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
            count += 1
    return count


def _transform_file(
    input_path: PathLike,
    output_path: PathLike,
    transform: Callable[[str], str],
    progress: Optional[Callable[[int], None]] = None,
    encoding: str = FILE_ENCODING,
) -> FileStats:
    """Apply a per-record *transform* to a line-oriented file.

    Generic fallback used for arbitrary record transforms; the codec file
    flows go through :class:`repro.engine.ZSmilesEngine`, which batches
    records instead of dispatching per line.
    """
    input_path = Path(input_path)
    output_path = Path(output_path)
    lines = 0
    input_bytes = 0
    output_bytes = 0
    with open(input_path, "r", encoding=encoding, newline="") as src, open(
        output_path, "w", encoding=encoding, newline="\n"
    ) as dst:
        for raw in src:
            record = raw.rstrip("\r\n")
            out = transform(record)
            if "\n" in out or "\r" in out:
                raise CodecError("transform produced a record containing a line terminator")
            dst.write(out)
            dst.write("\n")
            lines += 1
            input_bytes += len(record.encode(encoding)) + 1
            output_bytes += len(out.encode(encoding)) + 1
            if progress is not None and lines % 100_000 == 0:
                progress(lines)
    return FileStats(
        input_path=input_path,
        output_path=output_path,
        lines=lines,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
    )


def compress_file(
    codec: ZSmilesCodec,
    input_path: PathLike,
    output_path: Optional[PathLike] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> FileStats:
    """Compress a ``.smi`` file into a ``.zsmi`` file, one record per line.

    Deprecated shim: delegates to
    :meth:`repro.engine.ZSmilesEngine.compress_file`, which also accepts a
    backend selection.  Batches run through the flat-array kernel backend;
    output stays byte-identical to the historical per-line implementation
    (the kernel's parity contract).

    Parameters
    ----------
    codec:
        Trained codec (dictionary + preprocessing pipeline).
    input_path:
        Plain SMILES file, one record per line.
    output_path:
        Destination; defaults to the input path with the ``.zsmi`` suffix.
    progress:
        Optional callback invoked every 100 000 records with the line count.
    """
    from ..engine.engine import ZSmilesEngine

    with ZSmilesEngine.from_codec(codec, backend="kernel") as engine:
        return engine.compress_file(input_path, output_path, progress=progress)


def decompress_file(
    codec: ZSmilesCodec,
    input_path: PathLike,
    output_path: Optional[PathLike] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> FileStats:
    """Decompress a ``.zsmi`` file back into a ``.smi`` file.

    Deprecated shim: delegates to
    :meth:`repro.engine.ZSmilesEngine.decompress_file` (flat-array kernel
    backend, byte-identical to the per-line path).
    """
    from ..engine.engine import ZSmilesEngine

    with ZSmilesEngine.from_codec(codec, backend="kernel") as engine:
        return engine.decompress_file(input_path, output_path, progress=progress)


def verify_separability(path: PathLike, expected_lines: Optional[int] = None) -> bool:
    """Check that a compressed file keeps one record per line.

    Returns ``True`` when the file has no empty trailing garbage and, when
    *expected_lines* is given, exactly that many records.  This is the
    invariant that enables random access.
    """
    count = 0
    for _ in read_lines(path):
        count += 1
    if expected_lines is not None:
        return count == expected_lines
    return count > 0
