"""Per-line SMILES decompressor (Section IV-D2).

Decompression is a straight lookup: every symbol of the compressed record is
replaced by its dictionary expansion; a space (the escape marker) copies the
following character verbatim.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from ..dictionary.codec_table import CodecTable
from ..errors import DecompressionError
from .escape import iter_compressed_units


class Decompressor:
    """Decompresses records produced by :class:`~repro.core.compressor.Compressor`."""

    def __init__(self, table: CodecTable):
        self.table = table

    def decompress_line(self, compressed: str) -> str:
        """Decode one compressed record back to its SMILES text.

        Raises
        ------
        DecompressionError
            If a symbol is not present in the dictionary or an escape marker
            dangles at the end of the record.
        """
        if "\n" in compressed or "\r" in compressed:
            raise DecompressionError("compressed record must not contain line terminators")
        out: List[str] = []
        for unit, is_escape in iter_compressed_units(compressed):
            if is_escape:
                out.append(unit)
                continue
            pattern = self.table.pattern_for(unit)
            if pattern is None:
                raise DecompressionError(
                    f"symbol {unit!r} (U+{ord(unit):04X}) is not in the dictionary"
                )
            out.append(pattern)
        return "".join(out)

    def decompress_lines(self, lines: Iterable[str]) -> Iterator[str]:
        """Lazily decompress an iterable of compressed records."""
        for line in lines:
            yield self.decompress_line(line)

    def decompress_all(self, lines: Sequence[str]) -> List[str]:
        """Eagerly decompress a sequence of compressed records."""
        return [self.decompress_line(line) for line in lines]
