"""Per-line SMILES compressor (Section IV-D1).

The compressor turns one SMILES record into one compressed record using a
:class:`~repro.dictionary.codec_table.CodecTable`.  Two parsing strategies are
available: the paper's optimal shortest-path formulation and a greedy
longest-match ablation.  The output of either strategy is newline-free, so a
compressed file keeps exactly one record per line (the separability / random
access requirement).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from ..dictionary.codec_table import CodecTable
from ..errors import CompressionError
from ..smiles.alphabet import ESCAPE_CHAR
from .shortest_path import ParseStep, greedy_parse, optimal_parse


class ParseStrategy(enum.Enum):
    """How the input line is segmented into dictionary patterns."""

    OPTIMAL = "optimal"
    GREEDY = "greedy"

    @classmethod
    def from_name(cls, name: str) -> "ParseStrategy":
        normalized = name.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown parse strategy {name!r}")


@dataclass(frozen=True)
class CompressionRecord:
    """Result of compressing one line, with bookkeeping for reports.

    Attributes
    ----------
    original:
        The input record (after preprocessing, if any).
    compressed:
        The compressed record.
    matches:
        Number of dictionary-symbol steps used.
    escapes:
        Number of escaped literals used.
    """

    original: str
    compressed: str
    matches: int
    escapes: int

    @property
    def ratio(self) -> float:
        """Compressed size over original size (lower is better); 1.0 for empty input."""
        if not self.original:
            return 1.0
        return len(self.compressed) / len(self.original)


class Compressor:
    """Compresses SMILES records with a fixed dictionary."""

    def __init__(
        self,
        table: CodecTable,
        strategy: ParseStrategy = ParseStrategy.OPTIMAL,
    ):
        self.table = table
        self.strategy = strategy

    # ------------------------------------------------------------------ #
    def parse_line(self, line: str) -> List[ParseStep]:
        """Segment *line* into dictionary matches and escapes."""
        if "\n" in line or "\r" in line:
            raise CompressionError("input record must not contain line terminators")
        if self.strategy is ParseStrategy.OPTIMAL:
            return optimal_parse(line, self.table.trie)
        return greedy_parse(line, self.table.trie)

    def compress_line(self, line: str) -> str:
        """Compress one record and return the compressed text."""
        return self.compress_record(line).compressed

    def compress_record(self, line: str) -> CompressionRecord:
        """Compress one record and return it together with match statistics."""
        steps = self.parse_line(line)
        pieces: List[str] = []
        matches = 0
        escapes = 0
        for step in steps:
            if step.symbol is None:
                pieces.append(ESCAPE_CHAR + step.pattern)
                escapes += 1
            else:
                pieces.append(step.symbol)
                matches += 1
        compressed = "".join(pieces)
        return CompressionRecord(
            original=line, compressed=compressed, matches=matches, escapes=escapes
        )

    # ------------------------------------------------------------------ #
    def compress_lines(self, lines: Iterable[str]) -> Iterator[str]:
        """Lazily compress an iterable of records (one output per input)."""
        for line in lines:
            yield self.compress_line(line)

    def compress_all(self, lines: Sequence[str]) -> List[str]:
        """Eagerly compress a sequence of records."""
        return [self.compress_line(line) for line in lines]

    # ------------------------------------------------------------------ #
    def guaranteed_no_expansion(self, line: str) -> bool:
        """``True`` when the paper's no-expansion guarantee applies to *line*.

        The guarantee holds exactly when every character of *line* is covered
        by a single-character dictionary entry (an identity entry from
        pre-population, or a trained one-character pattern): each such
        character costs at most 1 output character, so the compressed record
        can never exceed the input length.  A character without single-char
        coverage may force the two-character escape sequence, voiding the
        guarantee.  Earlier revisions also accepted ``pattern_for(ch) == ch``,
        which looks *ch* up in the symbol space instead of the pattern space
        and therefore conflated the two sides of the table.
        """
        return all(self.table.symbol_for(ch) is not None for ch in line)


def record_bytes(text: str) -> int:
    """Stored size of one record in bytes, excluding the line terminator.

    Compressed records only contain code points up to U+00FF (printable ASCII
    plus the paper's "extended ASCII" symbol range), so on disk they are
    written as Latin-1 and every character is exactly one byte.  Plain SMILES
    records are ASCII, so the same count applies.
    """
    return len(text)


def compression_ratio(
    original: Sequence[str], compressed: Sequence[str], per_line_terminator: int = 1
) -> float:
    """Corpus-level compression ratio: compressed bytes over original bytes.

    Both sides include one line-terminator byte per record (the files store
    one record per line), matching how the paper measures file sizes.
    """
    if len(original) != len(compressed):
        raise ValueError("original and compressed corpora must have equal length")
    original_bytes = sum(record_bytes(s) + per_line_terminator for s in original)
    compressed_bytes = sum(record_bytes(s) + per_line_terminator for s in compressed)
    if original_bytes == 0:
        return 1.0
    return compressed_bytes / original_bytes
