"""Optimal per-line compression as a shortest-path problem (Section IV-D1).

The paper models one SMILES string as a graph whose nodes are character
positions; an edge ``(i, j)`` exists when the substring ``text[i:j]`` is a
dictionary pattern (cost 1 — one output symbol) and the fallback edge
``(i, i+1)`` always exists (cost 2 — escape marker plus the literal
character).  Because every edge points forward the graph is a DAG, so the
Dijkstra search used by the paper reduces to a single backward dynamic
programming sweep; the result (the cheapest symbol sequence) is identical.

This module computes the optimal parse; the compressor turns the parse into
output text.  It is the package's *reference oracle*: the flat-array kernel
(:mod:`repro.engine.kernel`) must reproduce its output byte for byte, so the
implementation here favours clarity — while staying as cheap as a pure-Python
oracle can be (integer costs, ``__slots__`` trie nodes, no redundant work).

Deterministic tie-break (pinned by the golden fixtures)
-------------------------------------------------------
Several parses can share the minimal output length.  The parse chosen is fully
deterministic: at every position the escape edge is the initial incumbent,
candidate dictionary matches are examined in increasing pattern length (the
order :meth:`~repro.dictionary.trie.Trie.matches_at` yields them), and a
candidate replaces the incumbent only with a *strictly* lower cost.  At equal
cost, therefore, the escape edge beats any match and the shortest match beats
longer ones.  This rule is a format commitment: the byte-pinned fixtures under
``tests/fixtures/`` encode it, so changing it (e.g. to longest-match-wins,
which rewrites most fixture lines) is a declared format break, not a refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dictionary.trie import Trie

#: Cost of emitting one dictionary symbol.
MATCH_COST = 1
#: Cost of escaping one literal character (escape marker + the character).
ESCAPE_COST = 2


@dataclass(frozen=True)
class ParseStep:
    """One edge of the chosen shortest path.

    Attributes
    ----------
    start:
        Input position the step begins at.
    length:
        Number of input characters consumed.
    symbol:
        The dictionary symbol to emit, or ``None`` for an escaped literal.
    pattern:
        The matched pattern text (equals the consumed substring); for escapes
        this is the single literal character.
    cost:
        Output characters this step contributes (1 for matches, 2 for escapes).
    """

    start: int
    length: int
    symbol: Optional[str]
    pattern: str
    cost: int


def optimal_parse(text: str, trie: Trie) -> List[ParseStep]:
    """Compute the minimum-output-length parse of *text* against *trie*.

    Returns the list of steps from the beginning to the end of *text*.  The
    empty string parses to an empty list.  Ties follow the pinned rule in the
    module docstring: strict improvement only, so the escape edge wins at
    equal cost and the shortest match wins among equal-cost matches.

    Costs are small integers (edge weights are 1 and 2), so the DP runs on
    ``int`` arithmetic; ``ESCAPE_COST * n + 1`` bounds every reachable cost
    from above and serves as the unreached-position sentinel.
    """
    n = len(text)
    if n == 0:
        return []
    # cost[i] = minimal output length for text[i:], choice[i] = best step at i.
    infinity = ESCAPE_COST * n + 1
    cost: List[int] = [infinity] * (n + 1)
    choice: List[Optional[ParseStep]] = [None] * (n + 1)
    cost[n] = 0
    for i in range(n - 1, -1, -1):
        # Escape edge always available: the incumbent at every position.
        best_cost = ESCAPE_COST + cost[i + 1]
        best_step = ParseStep(
            start=i, length=1, symbol=None, pattern=text[i], cost=ESCAPE_COST
        )
        for length, pattern, payload in trie.matches_at(text, i):
            candidate = MATCH_COST + cost[i + length]
            if candidate < best_cost:
                best_cost = candidate
                best_step = ParseStep(
                    start=i,
                    length=length,
                    symbol=payload,
                    pattern=pattern,
                    cost=MATCH_COST,
                )
        cost[i] = best_cost
        choice[i] = best_step
    # Reconstruct forward.
    steps: List[ParseStep] = []
    pos = 0
    while pos < n:
        step = choice[pos]
        assert step is not None
        steps.append(step)
        pos += step.length
    return steps


def greedy_parse(text: str, trie: Trie) -> List[ParseStep]:
    """Longest-match greedy parse (ablation baseline for the optimal DP).

    At each position the longest dictionary pattern is taken; if none matches
    the character is escaped.  Never better than :func:`optimal_parse`, and the
    gap between the two quantifies the value of the paper's shortest-path
    formulation.
    """
    steps: List[ParseStep] = []
    pos = 0
    n = len(text)
    while pos < n:
        match = trie.longest_match_at(text, pos)
        if match is None:
            steps.append(
                ParseStep(start=pos, length=1, symbol=None, pattern=text[pos], cost=ESCAPE_COST)
            )
            pos += 1
        else:
            length, pattern, payload = match
            steps.append(
                ParseStep(start=pos, length=length, symbol=payload, pattern=pattern, cost=MATCH_COST)
            )
            pos += length
    return steps


def parse_cost(steps: Sequence[ParseStep]) -> int:
    """Total number of output characters the parse will produce."""
    return sum(step.cost for step in steps)


def parse_consumes(steps: Sequence[ParseStep]) -> int:
    """Total number of input characters the parse consumes (must equal ``len(text)``)."""
    return sum(step.length for step in steps)
