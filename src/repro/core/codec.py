"""High-level ZSMILES codec: training, compression and decompression.

:class:`ZSmilesCodec` bundles the three ingredients of the paper's pipeline
(Figure 3) behind a single object:

* the optional preprocessing pipeline (ring-identifier renumbering),
* the trained dictionary (:class:`~repro.dictionary.codec_table.CodecTable`),
* the per-line compressor / decompressor.

Typical usage::

    from repro import ZSmilesCodec

    codec = ZSmilesCodec.train(training_smiles, preprocessing=True)
    z = codec.compress("COc1cc(C=O)ccc1O")
    assert codec.decompress(z) == codec.preprocess("COc1cc(C=O)ccc1O")

Note that decompression returns the *preprocessed* SMILES: the ring-identifier
renumbering is a canonicalization, not an invertible transform, but the
renumbered string denotes exactly the same molecule (Section IV-A).  With
``preprocessing=False`` the round trip is byte-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from ..dictionary.codec_table import CodecTable
from ..dictionary.generator import DictionaryConfig, DictionaryGenerator, TrainingReport
from ..dictionary.prepopulation import PrePopulation
from ..dictionary import serialization
from ..preprocess.pipeline import PreprocessingPipeline, make_pipeline
from ..preprocess.ring_renumber import RingRenumberPolicy
from .compressor import (
    CompressionRecord,
    Compressor,
    ParseStrategy,
    compression_ratio,
)
from .decompressor import Decompressor


@dataclass
class CodecStats:
    """Aggregate statistics of compressing a corpus with one codec."""

    lines: int
    original_bytes: int
    compressed_bytes: int
    matches: int
    escapes: int

    @property
    def ratio(self) -> float:
        """Compressed bytes / original bytes (lower is better)."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes

    @property
    def escape_fraction(self) -> float:
        """Fraction of emitted units that are escapes."""
        total = self.matches + self.escapes
        return self.escapes / total if total else 0.0


class ZSmilesCodec:
    """Shared-dictionary SMILES codec with optional domain preprocessing."""

    def __init__(
        self,
        table: CodecTable,
        pipeline: Optional[PreprocessingPipeline] = None,
        strategy: ParseStrategy = ParseStrategy.OPTIMAL,
    ):
        self.table = table
        self.pipeline = pipeline if pipeline is not None else make_pipeline(False)
        self.compressor = Compressor(table, strategy=strategy)
        self.decompressor = Decompressor(table)
        self.training_report: Optional[TrainingReport] = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    @classmethod
    def train(
        cls,
        corpus: Iterable[str],
        preprocessing: bool = True,
        ring_policy: RingRenumberPolicy = "innermost",
        prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET,
        lmin: int = 2,
        lmax: int = 8,
        max_entries: Optional[int] = None,
        min_occurrences: int = 2,
        rank_mode: str = "savings",
        strategy: ParseStrategy = ParseStrategy.OPTIMAL,
    ) -> "ZSmilesCodec":
        """Train a codec on *corpus* (Figure 2 of the paper).

        Parameters
        ----------
        corpus:
            Training SMILES strings.
        preprocessing:
            Apply ring-identifier renumbering before training and before every
            compression (the Table I "Pre-processing" switch).
        ring_policy:
            ``"innermost"`` (paper default) or ``"outermost"``.
        prepopulation:
            Dictionary seeding policy (the Table I "Pre-population" column).
        lmin, lmax, max_entries, min_occurrences, rank_mode:
            Algorithm 1 parameters; see
            :class:`~repro.dictionary.generator.DictionaryConfig`.
        strategy:
            Optimal shortest-path parsing (paper) or greedy longest match.
        """
        pipeline = make_pipeline(preprocessing, ring_policy=ring_policy)
        prepared = pipeline.apply_list(list(corpus))
        config = DictionaryConfig(
            lmin=lmin,
            lmax=lmax,
            max_entries=max_entries,
            prepopulation=prepopulation,
            min_occurrences=min_occurrences,
            rank_mode=rank_mode,
        )
        generator = DictionaryGenerator(config)
        table = generator.train(prepared)
        codec = cls(table, pipeline=pipeline, strategy=strategy)
        codec.training_report = generator.report
        return codec

    # ------------------------------------------------------------------ #
    # Single-record operations
    # ------------------------------------------------------------------ #
    def preprocess(self, smiles: str) -> str:
        """Apply the codec's preprocessing pipeline to one SMILES string."""
        return self.pipeline(smiles)

    def compress(self, smiles: str) -> str:
        """Preprocess and compress one SMILES string."""
        return self.compressor.compress_line(self.preprocess(smiles))

    def compress_record(self, smiles: str) -> CompressionRecord:
        """Preprocess and compress one SMILES string, returning statistics."""
        return self.compressor.compress_record(self.preprocess(smiles))

    def decompress(self, compressed: str) -> str:
        """Decompress one record back to (preprocessed) SMILES text."""
        return self.decompressor.decompress_line(compressed)

    # ------------------------------------------------------------------ #
    # Corpus operations (deprecation shims delegating to the engine)
    # ------------------------------------------------------------------ #
    def _serial_engine(self):
        """An in-process :class:`~repro.engine.ZSmilesEngine` over this codec.

        Imported lazily — the engine package builds on this module.  Batches
        run through the flat-array kernel backend (byte-identical to the
        per-line reference path, several times faster).
        """
        from ..engine.engine import ZSmilesEngine

        return ZSmilesEngine.from_codec(self, backend="kernel")

    def compress_many(self, smiles_list: Sequence[str]) -> List[str]:
        """Compress a sequence of SMILES (order preserved, one output per input).

        Deprecated shim: prefer :meth:`repro.engine.ZSmilesEngine.compress_batch`.
        """
        return self._serial_engine().compress_batch(smiles_list).records

    def decompress_many(self, compressed_list: Sequence[str]) -> List[str]:
        """Decompress a sequence of records (order preserved).

        Deprecated shim: prefer :meth:`repro.engine.ZSmilesEngine.decompress_batch`.
        """
        return self._serial_engine().decompress_batch(compressed_list).records

    def evaluate(self, corpus: Sequence[str]) -> CodecStats:
        """Compress *corpus* and collect aggregate statistics.

        File sizes include one newline byte per record on both sides, matching
        the paper's file-level compression-ratio measurements.  Deprecated
        shim: prefer :meth:`repro.engine.ZSmilesEngine.evaluate`.
        """
        return self._serial_engine().evaluate(corpus)

    def compression_ratio(self, corpus: Sequence[str]) -> float:
        """Corpus compression ratio (compressed bytes / original bytes)."""
        return self.evaluate(corpus).ratio

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_dictionary(self, path: Union[str, Path]) -> None:
        """Write the codec's dictionary to a ``.dct`` file."""
        serialization.save(self.table, path)

    @classmethod
    def from_dictionary(
        cls,
        path: Union[str, Path],
        preprocessing: bool = True,
        ring_policy: RingRenumberPolicy = "innermost",
        strategy: ParseStrategy = ParseStrategy.OPTIMAL,
    ) -> "ZSmilesCodec":
        """Load a codec from a previously saved ``.dct`` dictionary."""
        table = serialization.load(path)
        pipeline = make_pipeline(preprocessing, ring_policy=ring_policy)
        return cls(table, pipeline=pipeline, strategy=strategy)

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZSmilesCodec(entries={len(self.table)}, "
            f"pipeline={self.pipeline.describe()!r}, "
            f"strategy={self.compressor.strategy.value})"
        )


__all__ = [
    "CodecStats",
    "ZSmilesCodec",
    "compression_ratio",
]
