"""The compression dictionary ``D``: symbol ↔ pattern codec table.

A :class:`CodecTable` is the immutable artefact produced by dictionary
training (Figure 2 of the paper) and consumed by both the compressor and the
decompressor (Figure 3).  It maps single-character *symbols* to multi- or
single-character *patterns*:

* pre-populated entries map a character to itself (Section IV-B),
* trained entries map an unused code point to a recurrent SMILES substring
  (Section IV-C).

The table also exposes the trie used for pattern matching and the metadata
needed to make ``.dct`` files self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import DictionaryError, SymbolSpaceExhaustedError
from ..smiles.alphabet import ESCAPE_CHAR
from .prepopulation import PrePopulation, available_symbols, seed_entries
from .trie import Trie


@dataclass(frozen=True)
class DictionaryEntry:
    """One (symbol, pattern) association.

    Attributes
    ----------
    symbol:
        The single character written to the compressed stream.
    pattern:
        The substring it expands to.
    seeded:
        ``True`` for pre-populated identity entries, ``False`` for trained ones.
    rank:
        The rank value the pattern had when it was selected by Algorithm 1
        (``0.0`` for seeded entries); kept for diagnostics and reports.
    """

    symbol: str
    pattern: str
    seeded: bool = False
    rank: float = 0.0


class CodecTable:
    """Bidirectional symbol ↔ pattern mapping with the matching trie."""

    def __init__(
        self,
        entries: Iterable[DictionaryEntry],
        prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET,
        metadata: Optional[Mapping[str, str]] = None,
    ):
        self._entries: List[DictionaryEntry] = list(entries)
        self._prepopulation = prepopulation
        self._metadata: Dict[str, str] = dict(metadata or {})
        self._by_symbol: Dict[str, DictionaryEntry] = {}
        self._by_pattern: Dict[str, DictionaryEntry] = {}
        for entry in self._entries:
            self._validate_entry(entry)
            self._by_symbol[entry.symbol] = entry
            self._by_pattern[entry.pattern] = entry
        self._trie = Trie((e.pattern, e.symbol) for e in self._entries)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate_entry(self, entry: DictionaryEntry) -> None:
        if len(entry.symbol) != 1:
            raise DictionaryError(f"symbol must be one character, got {entry.symbol!r}")
        if entry.symbol == ESCAPE_CHAR:
            raise DictionaryError("the escape character cannot be a dictionary symbol")
        if entry.symbol in ("\n", "\r"):
            raise DictionaryError("line terminators cannot be dictionary symbols")
        if not entry.pattern:
            raise DictionaryError("empty pattern")
        if ESCAPE_CHAR in entry.pattern or "\n" in entry.pattern or "\r" in entry.pattern:
            raise DictionaryError(
                f"pattern {entry.pattern!r} contains a reserved character"
            )
        if entry.symbol in self._by_symbol:
            raise DictionaryError(f"duplicate symbol {entry.symbol!r}")
        if entry.pattern in self._by_pattern:
            raise DictionaryError(f"duplicate pattern {entry.pattern!r}")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_patterns(
        cls,
        patterns: Sequence[str],
        prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET,
        ranks: Optional[Sequence[float]] = None,
        metadata: Optional[Mapping[str, str]] = None,
    ) -> "CodecTable":
        """Build a table from trained *patterns* plus the pre-population seed.

        Symbols are assigned to patterns in order: the pool returned by
        :func:`repro.dictionary.prepopulation.available_symbols` is consumed
        front to back, so earlier (higher-rank) patterns get the "nicer"
        printable code points.

        Raises
        ------
        SymbolSpaceExhaustedError
            If more patterns are supplied than symbols exist under the policy.
        """
        seeds = seed_entries(prepopulation)
        entries: List[DictionaryEntry] = [
            DictionaryEntry(symbol=ch, pattern=ch, seeded=True) for ch in seeds
        ]
        pool = available_symbols(prepopulation)
        trained = [p for p in patterns if p not in seeds]
        if len(trained) > len(pool):
            raise SymbolSpaceExhaustedError(
                f"{len(trained)} patterns requested but only {len(pool)} symbols "
                f"are available under policy {prepopulation.value!r}"
            )
        rank_list = list(ranks) if ranks is not None else [0.0] * len(trained)
        if len(rank_list) < len(trained):
            rank_list.extend([0.0] * (len(trained) - len(rank_list)))
        for symbol, pattern, rank in zip(pool, trained, rank_list):
            entries.append(
                DictionaryEntry(symbol=symbol, pattern=pattern, seeded=False, rank=rank)
            )
        return cls(entries, prepopulation=prepopulation, metadata=metadata)

    @classmethod
    def seeded_only(cls, prepopulation: PrePopulation) -> "CodecTable":
        """A table containing only the pre-population identity entries."""
        return cls.from_patterns([], prepopulation=prepopulation)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def pattern_for(self, symbol: str) -> Optional[str]:
        """Expansion of *symbol*, or ``None`` if the symbol is not in the table."""
        entry = self._by_symbol.get(symbol)
        return entry.pattern if entry else None

    def symbol_for(self, pattern: str) -> Optional[str]:
        """Symbol encoding *pattern*, or ``None`` if the pattern is not in the table."""
        entry = self._by_pattern.get(pattern)
        return entry.symbol if entry else None

    def __contains__(self, pattern: str) -> bool:
        return pattern in self._by_pattern

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DictionaryEntry]:
        return iter(self._entries)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def entries(self) -> List[DictionaryEntry]:
        """All entries (seeded first, then trained in selection order)."""
        return list(self._entries)

    @property
    def trained_entries(self) -> List[DictionaryEntry]:
        """Only the entries produced by Algorithm 1."""
        return [e for e in self._entries if not e.seeded]

    @property
    def seeded_entries(self) -> List[DictionaryEntry]:
        """Only the pre-population identity entries."""
        return [e for e in self._entries if e.seeded]

    @property
    def prepopulation(self) -> PrePopulation:
        """The pre-population policy this table was built with."""
        return self._prepopulation

    @property
    def metadata(self) -> Dict[str, str]:
        """Free-form provenance metadata (training dataset, parameters...)."""
        return dict(self._metadata)

    @property
    def trie(self) -> Trie:
        """Trie over every pattern; payloads are the symbols."""
        return self._trie

    @property
    def max_pattern_length(self) -> int:
        """Length of the longest pattern (the effective ``Lmax``)."""
        return self._trie.max_length

    def symbols(self) -> List[str]:
        """All symbols in entry order."""
        return [e.symbol for e in self._entries]

    def patterns(self) -> List[str]:
        """All patterns in entry order."""
        return [e.pattern for e in self._entries]

    def stats(self) -> Dict[str, float]:
        """Summary statistics used by experiment reports."""
        trained = self.trained_entries
        return {
            "total_entries": float(len(self._entries)),
            "seeded_entries": float(len(self.seeded_entries)),
            "trained_entries": float(len(trained)),
            "max_pattern_length": float(self.max_pattern_length),
            "mean_trained_length": (
                sum(len(e.pattern) for e in trained) / len(trained) if trained else 0.0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CodecTable(entries={len(self._entries)}, "
            f"trained={len(self.trained_entries)}, "
            f"prepopulation={self._prepopulation.value})"
        )
