"""Substring occurrence counting and rank computation (Section IV-C).

Algorithm 1 of the paper ranks each candidate substring ``p`` at selection
step ``t`` as::

    rank(p, t) = occ(p) * (len(p) - overlap(p, t))

where ``occ(p)`` is the number of occurrences of ``p`` in the training corpus
and ``overlap(p, t)`` measures how much of ``p`` is already covered by the
patterns selected in earlier iterations.  This module provides:

* :func:`count_substrings` — the occurrence-counting pass (Lines 3–7),
* :func:`pattern_overlap` — the overlap term used by ``update_rank`` (Line 13),
* :class:`RankTable` — a lazily-updated max-heap over candidate ranks, so the
  greedy selection loop does not have to rescan every candidate at every step
  (the rank of a candidate can only decrease as more patterns are selected,
  which makes the classic lazy-greedy evaluation exact).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .trie import Trie


def count_substrings(
    corpus: Iterable[str],
    lmin: int = 2,
    lmax: int = 8,
    min_occurrences: int = 2,
) -> Counter:
    """Count every substring of length ``[lmin, lmax]`` across *corpus*.

    Parameters
    ----------
    corpus:
        Iterable of (already preprocessed) SMILES strings.
    lmin, lmax:
        Inclusive substring length bounds (paper: ``Lmin = 2``; ``Lmax`` is the
        swept parameter of Figure 5).
    min_occurrences:
        Candidates occurring fewer times than this are dropped at the end of
        the pass — a singleton substring can never pay for a dictionary slot.

    Returns
    -------
    collections.Counter
        Mapping substring → occurrence count.
    """
    if lmin < 1:
        raise ValueError(f"lmin must be >= 1, got {lmin}")
    if lmax < lmin:
        raise ValueError(f"lmax ({lmax}) must be >= lmin ({lmin})")
    counts: Counter = Counter()
    for line in corpus:
        n = len(line)
        for length in range(lmin, min(lmax, n) + 1):
            # Counting every window of this length; Counter.update on a
            # generator keeps the inner loop in C.
            counts.update(line[i : i + length] for i in range(n - length + 1))
    if min_occurrences > 1:
        counts = Counter({p: c for p, c in counts.items() if c >= min_occurrences})
    return counts


def pattern_overlap(pattern: str, selected: Trie) -> int:
    """Number of characters of *pattern* covered by already-selected patterns.

    The paper defines ``norm(p, t) = len(p) - overlap(p, t)`` where the overlap
    is taken against the patterns chosen in previous iterations.  We measure
    coverage by greedy longest-match of the selected-pattern trie over
    *pattern*, which is exactly the coverage those patterns would achieve on
    the region of the input this candidate occupies.
    """
    if len(selected) == 0:
        return 0
    return selected.coverage(pattern)


def pattern_encoding_cost(pattern: str, selected: Trie) -> int:
    """Output symbols needed to encode *pattern* with the current selection.

    Characters not covered by any selected pattern count one each (the
    pre-populated identity entries make every SMILES character encodable in
    one symbol), covered stretches count one symbol per greedy longest match.
    """
    if len(selected) == 0:
        return len(pattern)
    cost = 0
    pos = 0
    n = len(pattern)
    while pos < n:
        match = selected.longest_match_at(pattern, pos)
        if match is None:
            cost += 1
            pos += 1
        else:
            cost += 1
            pos += match[0]
    return cost


#: Rank formulations selectable in :class:`~repro.dictionary.generator.DictionaryConfig`.
RANK_MODES = ("savings", "coverage")


def rank_value(
    occurrences: int,
    length: int,
    overlap: int,
    encoding_cost: Optional[int] = None,
    mode: str = "savings",
) -> float:
    """Rank of a candidate pattern under the chosen formulation.

    ``"coverage"`` is the paper's literal Equation 1,
    ``rank = occ × (len − overlap)``: it maximizes how much raw input the
    dictionary covers.  ``"savings"`` (the library default) ranks by marginal
    compression gain, ``rank = occ × (cost_with_current_dictionary − 1)``:
    each occurrence of the candidate currently costs ``encoding_cost`` output
    symbols and would cost one if the candidate were added.  The two coincide
    on an empty selection up to the (len vs len−1) constant; the savings form
    keeps selecting long patterns once the frequent bigrams are in, which is
    what drives the paper's ≈0.3 ratios.  A benchmark compares both modes.
    """
    if mode == "coverage":
        return float(occurrences) * max(0, length - overlap)
    if mode == "savings":
        cost = encoding_cost if encoding_cost is not None else length
        return float(occurrences) * max(0, cost - 1)
    raise ValueError(f"unknown rank mode {mode!r}; expected one of {RANK_MODES}")


@dataclass(frozen=True)
class RankedPattern:
    """A candidate pattern with its occurrence count and current rank."""

    pattern: str
    occurrences: int
    rank: float


class RankTable:
    """Max-heap of candidate patterns with lazy rank re-evaluation.

    The greedy loop of Algorithm 1 repeatedly extracts the highest-rank
    candidate and then discounts every other candidate by its overlap with the
    growing selection.  Because the discount can only lower ranks, the heap
    can be refreshed lazily: pop the stale maximum, recompute its rank against
    the current selection, and re-insert it if it is no longer the maximum.
    This gives exactly the same selection as recomputing every rank each
    iteration, at a fraction of the cost.
    """

    def __init__(
        self,
        counts: Dict[str, int],
        candidate_limit: Optional[int] = None,
        mode: str = "savings",
    ):
        if mode not in RANK_MODES:
            raise ValueError(f"unknown rank mode {mode!r}; expected one of {RANK_MODES}")
        self.mode = mode
        items = list(counts.items())
        # Initial rank has no overlap/selection: occ × len (coverage) or
        # occ × (len − 1) (savings); the ordering key below covers both.
        initial = (lambda p, occ: occ * len(p)) if mode == "coverage" else (
            lambda p, occ: occ * (len(p) - 1)
        )
        items.sort(key=lambda kv: (-initial(kv[0], kv[1]), kv[0]))
        if candidate_limit is not None:
            items = items[:candidate_limit]
        self._occurrences: Dict[str, int] = dict(items)
        self._heap: List[Tuple[float, str]] = [
            (-float(initial(p, occ)), p) for p, occ in items
        ]
        heapq.heapify(self._heap)
        self._removed: set[str] = set()

    def __len__(self) -> int:
        return len(self._occurrences) - len(self._removed)

    def occurrences(self, pattern: str) -> int:
        """Occurrence count of *pattern* in the training corpus."""
        return self._occurrences[pattern]

    def remove(self, pattern: str) -> None:
        """Remove *pattern* from further consideration (Line 11 of Algorithm 1)."""
        self._removed.add(pattern)

    def pop_best(self, selected: Trie) -> Optional[RankedPattern]:
        """Extract the candidate with the highest current rank.

        Parameters
        ----------
        selected:
            Trie of patterns already added to the dictionary; used to compute
            the overlap discount.

        Returns
        -------
        RankedPattern or None
            ``None`` when no candidate with positive rank remains.
        """
        while self._heap:
            neg_stale_rank, pattern = heapq.heappop(self._heap)
            if pattern in self._removed:
                continue
            occ = self._occurrences[pattern]
            current = self._current_rank(pattern, occ, selected)
            if current <= 0:
                # Fully covered by the existing selection; discard for good.
                self._removed.add(pattern)
                continue
            if self._heap and -self._heap[0][0] > current + 1e-12:
                # A fresher candidate may now rank higher: push back with the
                # updated (lower) rank and retry.
                heapq.heappush(self._heap, (-current, pattern))
                continue
            self._removed.add(pattern)
            return RankedPattern(pattern=pattern, occurrences=occ, rank=current)
        return None

    def _current_rank(self, pattern: str, occ: int, selected: Trie) -> float:
        """Rank of *pattern* against the current selection under the table's mode."""
        if self.mode == "coverage":
            return rank_value(
                occ, len(pattern), pattern_overlap(pattern, selected), mode="coverage"
            )
        return rank_value(
            occ,
            len(pattern),
            0,
            encoding_cost=pattern_encoding_cost(pattern, selected),
            mode="savings",
        )

    def snapshot(self, selected: Trie, top: int = 20) -> List[RankedPattern]:
        """Current top-*top* candidates by rank (diagnostic helper, O(n))."""
        ranked = [
            RankedPattern(
                pattern=p,
                occurrences=occ,
                rank=self._current_rank(p, occ, selected),
            )
            for p, occ in self._occurrences.items()
            if p not in self._removed
        ]
        ranked.sort(key=lambda r: (-r.rank, r.pattern))
        return ranked[:top]


def corpus_statistics(corpus: Sequence[str]) -> Dict[str, float]:
    """Basic corpus statistics recorded in dictionary metadata."""
    if not corpus:
        return {"lines": 0, "total_chars": 0, "mean_length": 0.0, "max_length": 0}
    lengths = [len(line) for line in corpus]
    return {
        "lines": float(len(corpus)),
        "total_chars": float(sum(lengths)),
        "mean_length": sum(lengths) / len(lengths),
        "max_length": float(max(lengths)),
    }
