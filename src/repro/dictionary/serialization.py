"""``.dct`` dictionary file format.

The paper soft-codes the dictionary into the ZSMILES executable; for a library
we need the dictionary to be a portable artefact that can be trained once on a
shared corpus and distributed alongside the compressed databases (the paper's
"single fixed dictionary" requirement).  The format is a small, line-oriented,
UTF-8 text file:

* header lines start with ``#`` and carry ``key = value`` metadata,
* each entry line is ``<symbol>\\t<pattern>\\t<seeded>\\t<rank>``,
* symbols and patterns are escaped with ``\\t``, ``\\n``, ``\\\\`` and
  ``\\xNN`` sequences so the file itself stays printable.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, TextIO, Tuple, Union

from ..errors import DictionaryFormatError
from .codec_table import CodecTable, DictionaryEntry
from .prepopulation import PrePopulation

FORMAT_VERSION = "1"
MAGIC = "# ZSMILES dictionary"


def _escape(text: str) -> str:
    """Escape a symbol or pattern for storage in the ``.dct`` text format.

    ``#`` is escaped as well so an entry whose symbol is ``#`` cannot be
    mistaken for a comment line when the file is read back.
    """
    out: List[str] = []
    for ch in text:
        if ch == "\\":
            out.append("\\\\")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "#":
            out.append("\\x23")
        elif ord(ch) < 0x20:
            out.append(f"\\x{ord(ch):02x}")
        else:
            out.append(ch)
    return "".join(out)


def _unescape(text: str) -> str:
    """Inverse of :func:`_escape`."""
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise DictionaryFormatError(f"dangling escape in {text!r}")
        nxt = text[i + 1]
        if nxt == "\\":
            out.append("\\")
            i += 2
        elif nxt == "t":
            out.append("\t")
            i += 2
        elif nxt == "n":
            out.append("\n")
            i += 2
        elif nxt == "r":
            out.append("\r")
            i += 2
        elif nxt == "x":
            if i + 3 >= n:
                raise DictionaryFormatError(f"truncated \\x escape in {text!r}")
            out.append(chr(int(text[i + 2 : i + 4], 16)))
            i += 4
        else:
            raise DictionaryFormatError(f"unknown escape \\{nxt} in {text!r}")
    return "".join(out)


def dumps(table: CodecTable) -> str:
    """Serialize *table* to the ``.dct`` text format."""
    buffer = io.StringIO()
    buffer.write(f"{MAGIC} v{FORMAT_VERSION}\n")
    buffer.write(f"# prepopulation = {table.prepopulation.value}\n")
    for key, value in sorted(table.metadata.items()):
        if key == "prepopulation":
            # Already written as the dedicated header line above; skipping it
            # keeps dumps() idempotent across a save/load round trip.
            continue
        buffer.write(f"# {key} = {value}\n")
    for entry in table.entries:
        buffer.write(
            f"{_escape(entry.symbol)}\t{_escape(entry.pattern)}\t"
            f"{1 if entry.seeded else 0}\t{entry.rank:.6g}\n"
        )
    return buffer.getvalue()


def _parse_header(lines: List[str]) -> Tuple[Dict[str, str], int]:
    """Parse leading comment lines; return (metadata, index of first entry line)."""
    if not lines or not lines[0].startswith(MAGIC):
        raise DictionaryFormatError("missing ZSMILES dictionary magic header")
    metadata: Dict[str, str] = {}
    index = 1
    while index < len(lines) and lines[index].startswith("#"):
        body = lines[index][1:].strip()
        if "=" in body:
            key, _, value = body.partition("=")
            metadata[key.strip()] = value.strip()
        index += 1
    return metadata, index


def loads(text: str) -> CodecTable:
    """Parse the ``.dct`` text format back into a :class:`CodecTable`."""
    lines = text.splitlines()
    metadata, start = _parse_header(lines)
    prepopulation = PrePopulation.from_name(metadata.pop("prepopulation", "smiles"))
    entries: List[DictionaryEntry] = []
    for lineno, line in enumerate(lines[start:], start=start + 1):
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 4:
            raise DictionaryFormatError(
                f"line {lineno}: expected 4 tab-separated fields, got {len(fields)}"
            )
        symbol_text, pattern_text, seeded_text, rank_text = fields
        try:
            rank = float(rank_text)
        except ValueError as exc:
            raise DictionaryFormatError(f"line {lineno}: bad rank {rank_text!r}") from exc
        entries.append(
            DictionaryEntry(
                symbol=_unescape(symbol_text),
                pattern=_unescape(pattern_text),
                seeded=seeded_text == "1",
                rank=rank,
            )
        )
    return CodecTable(entries, prepopulation=prepopulation, metadata=metadata)


def save(table: CodecTable, path: Union[str, Path, TextIO]) -> None:
    """Write *table* to *path* (a filesystem path or an open text file)."""
    text = dumps(table)
    if hasattr(path, "write"):
        path.write(text)  # type: ignore[union-attr]
        return
    Path(path).write_text(text, encoding="utf-8")


def load(path: Union[str, Path, TextIO]) -> CodecTable:
    """Read a dictionary from *path* (a filesystem path or an open text file)."""
    if hasattr(path, "read"):
        text = path.read()  # type: ignore[union-attr]
    else:
        text = Path(path).read_text(encoding="utf-8")
    return loads(text)
