"""``.dct`` dictionary file format.

The paper soft-codes the dictionary into the ZSMILES executable; for a library
we need the dictionary to be a portable artefact that can be trained once on a
shared corpus and distributed alongside the compressed databases (the paper's
"single fixed dictionary" requirement).  The format is a small, line-oriented,
UTF-8 text file:

* header lines start with ``#`` and carry ``key = value`` metadata,
* each entry line is ``<symbol>\\t<pattern>\\t<seeded>\\t<rank>``,
* symbols and patterns are escaped with ``\\t``, ``\\n``, ``\\\\`` and
  ``\\xNN`` sequences so the file itself stays printable.
"""

from __future__ import annotations

import hashlib
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from ..errors import DictionaryFormatError, DictionaryIntegrityError, DictionaryMismatchError
from .codec_table import CodecTable, DictionaryEntry
from .prepopulation import PrePopulation

FORMAT_VERSION = "1"
MAGIC = "# ZSMILES dictionary"

#: Metadata keys that pin a dictionary's identity (see :class:`DictionaryIdentity`).
NAME_META_KEY = "name"
VERSION_META_KEY = "version"
#: Optional declared total entry count, validated on load (see :func:`loads`).
ENTRIES_META_KEY = "entries"
#: Declared trained-entry count written by the dictionary generator.
TRAINED_ENTRIES_META_KEY = "trained_entries"


def _escape(text: str) -> str:
    """Escape a symbol or pattern for storage in the ``.dct`` text format.

    ``#`` is escaped as well so an entry whose symbol is ``#`` cannot be
    mistaken for a comment line when the file is read back.
    """
    out: List[str] = []
    for ch in text:
        if ch == "\\":
            out.append("\\\\")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "#":
            out.append("\\x23")
        elif ord(ch) < 0x20:
            out.append(f"\\x{ord(ch):02x}")
        else:
            out.append(ch)
    return "".join(out)


def _unescape(text: str) -> str:
    """Inverse of :func:`_escape`."""
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise DictionaryFormatError(f"dangling escape in {text!r}")
        nxt = text[i + 1]
        if nxt == "\\":
            out.append("\\")
            i += 2
        elif nxt == "t":
            out.append("\t")
            i += 2
        elif nxt == "n":
            out.append("\n")
            i += 2
        elif nxt == "r":
            out.append("\r")
            i += 2
        elif nxt == "x":
            if i + 3 >= n:
                raise DictionaryFormatError(f"truncated \\x escape in {text!r}")
            out.append(chr(int(text[i + 2 : i + 4], 16)))
            i += 4
        else:
            raise DictionaryFormatError(f"unknown escape \\{nxt} in {text!r}")
    return "".join(out)


def dumps(table: CodecTable) -> str:
    """Serialize *table* to the ``.dct`` text format."""
    buffer = io.StringIO()
    buffer.write(f"{MAGIC} v{FORMAT_VERSION}\n")
    buffer.write(f"# prepopulation = {table.prepopulation.value}\n")
    for key, value in sorted(table.metadata.items()):
        if key == "prepopulation":
            # Already written as the dedicated header line above; skipping it
            # keeps dumps() idempotent across a save/load round trip.
            continue
        buffer.write(f"# {key} = {value}\n")
    for entry in table.entries:
        buffer.write(
            f"{_escape(entry.symbol)}\t{_escape(entry.pattern)}\t"
            f"{1 if entry.seeded else 0}\t{entry.rank:.6g}\n"
        )
    return buffer.getvalue()


def _parse_header(lines: List[str]) -> Tuple[Dict[str, str], int]:
    """Parse leading comment lines; return (metadata, index of first entry line)."""
    if not lines or not lines[0].startswith(MAGIC):
        raise DictionaryFormatError("missing ZSMILES dictionary magic header")
    metadata: Dict[str, str] = {}
    index = 1
    while index < len(lines) and lines[index].startswith("#"):
        body = lines[index][1:].strip()
        if "=" in body:
            key, _, value = body.partition("=")
            metadata[key.strip()] = value.strip()
        index += 1
    return metadata, index


def loads(text: str, source: object = None) -> CodecTable:
    """Parse the ``.dct`` text format back into a :class:`CodecTable`.

    *source* is only used to name the offending file in error messages.

    When the header declares entry counts (the ``trained_entries`` key every
    trained dictionary carries, and/or an explicit ``entries`` total), the
    parsed body must agree — a truncated file loses trailing entry lines but
    keeps its header, so the mismatch is the truncation tripwire.  Raises
    :class:`~repro.errors.DictionaryIntegrityError` on disagreement.
    """
    lines = text.splitlines()
    metadata, start = _parse_header(lines)
    prepopulation = PrePopulation.from_name(metadata.pop("prepopulation", "smiles"))
    entries: List[DictionaryEntry] = []
    for lineno, line in enumerate(lines[start:], start=start + 1):
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 4:
            raise DictionaryFormatError(
                f"line {lineno}: expected 4 tab-separated fields, got {len(fields)}"
            )
        symbol_text, pattern_text, seeded_text, rank_text = fields
        try:
            rank = float(rank_text)
        except ValueError as exc:
            raise DictionaryFormatError(f"line {lineno}: bad rank {rank_text!r}") from exc
        entries.append(
            DictionaryEntry(
                symbol=_unescape(symbol_text),
                pattern=_unescape(pattern_text),
                seeded=seeded_text == "1",
                rank=rank,
            )
        )
    _check_declared_counts(entries, metadata, source)
    return CodecTable(entries, prepopulation=prepopulation, metadata=metadata)


def _check_declared_counts(
    entries: List[DictionaryEntry], metadata: Dict[str, str], source: object
) -> None:
    """Validate the parsed body against the header's declared entry counts."""
    where = f" in {source}" if source is not None else ""
    declared_total = _declared_int(metadata, ENTRIES_META_KEY)
    if declared_total is not None and declared_total != len(entries):
        raise DictionaryIntegrityError(
            f"dictionary declares {declared_total} entries but the body holds "
            f"{len(entries)}{where}: truncated or corrupt .dct",
            source=source,
        )
    declared_trained = _declared_int(metadata, TRAINED_ENTRIES_META_KEY)
    if declared_trained is not None:
        trained = sum(1 for entry in entries if not entry.seeded)
        if declared_trained != trained:
            raise DictionaryIntegrityError(
                f"dictionary declares {declared_trained} trained entries but the "
                f"body holds {trained}{where}: truncated or corrupt .dct",
                source=source,
            )


def _declared_int(metadata: Dict[str, str], key: str) -> Optional[int]:
    """The integer a header key declares, or ``None`` if absent/non-integer.

    Non-integer values are ignored rather than rejected: legacy hand-written
    headers may use the keys for free-form notes, and the integrity check
    must never make a previously loadable file unloadable.
    """
    raw = metadata.get(key)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def save(table: CodecTable, path: Union[str, Path, TextIO]) -> None:
    """Write *table* to *path* (a filesystem path or an open text file)."""
    text = dumps(table)
    if hasattr(path, "write"):
        path.write(text)  # type: ignore[union-attr]
        return
    Path(path).write_text(text, encoding="utf-8")


def load(path: Union[str, Path, TextIO]) -> CodecTable:
    """Read a dictionary from *path* (a filesystem path or an open text file)."""
    if hasattr(path, "read"):
        text = path.read()  # type: ignore[union-attr]
        source: object = getattr(path, "name", None)
    else:
        text = Path(path).read_text(encoding="utf-8")
        source = Path(path)
    return loads(text, source=source)


# --------------------------------------------------------------------------- #
# Dictionary identity
# --------------------------------------------------------------------------- #
def content_hash(table: CodecTable) -> str:
    """SHA-256 hex digest of a dictionary's *content*.

    Hashes the pre-population policy plus every entry (symbol, pattern,
    seeded flag, rank) in order, using the same escaping as the ``.dct``
    body — and deliberately *not* the metadata, so pinning a name/version
    on a dictionary does not change its content hash.
    """
    digest = hashlib.sha256()
    digest.update(f"prepopulation={table.prepopulation.value}\n".encode("utf-8"))
    for entry in table.entries:
        digest.update(
            f"{_escape(entry.symbol)}\t{_escape(entry.pattern)}\t"
            f"{1 if entry.seeded else 0}\t{entry.rank:.6g}\n".encode("utf-8")
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class DictionaryIdentity:
    """A dictionary's pinned identity: content hash plus optional name/version.

    The hash is authoritative (it is recomputed and verified on load); name
    and version are human-facing labels carried in the table metadata.
    """

    hash: str
    name: Optional[str] = None
    version: Optional[str] = None
    entries: int = 0

    @property
    def short_hash(self) -> str:
        """The first 12 hex characters — enough to name a dictionary in logs."""
        return self.hash[:12]

    def label(self) -> str:
        """Human-readable one-liner (``name@version (hash)`` as available)."""
        parts = []
        if self.name:
            parts.append(self.name if not self.version else f"{self.name}@{self.version}")
        parts.append(self.short_hash)
        return " ".join(parts)

    @classmethod
    def of(cls, table: CodecTable) -> "DictionaryIdentity":
        """The identity of *table*: content hash + metadata name/version."""
        metadata = table.metadata
        return cls(
            hash=content_hash(table),
            name=metadata.get(NAME_META_KEY) or None,
            version=metadata.get(VERSION_META_KEY) or None,
            entries=len(table),
        )

    def to_json_obj(self) -> Dict[str, object]:
        """JSON-serializable form (``None`` fields omitted, deterministic)."""
        obj: Dict[str, object] = {"hash": self.hash, "entries": self.entries}
        if self.name is not None:
            obj["name"] = self.name
        if self.version is not None:
            obj["version"] = self.version
        return obj

    @classmethod
    def from_json_obj(cls, obj: object) -> Optional["DictionaryIdentity"]:
        """Rebuild an identity from manifest metadata (``None`` if malformed)."""
        if not isinstance(obj, dict) or not isinstance(obj.get("hash"), str):
            return None
        name = obj.get("name")
        version = obj.get("version")
        entries = obj.get("entries")
        return cls(
            hash=obj["hash"],
            name=name if isinstance(name, str) else None,
            version=version if isinstance(version, str) else None,
            entries=entries if isinstance(entries, int) else 0,
        )


def verify_identity(
    table: CodecTable, expected_hash: str, source: object = None
) -> DictionaryIdentity:
    """Check *table*'s content hash against *expected_hash*.

    Returns the table's identity on agreement; raises
    :class:`~repro.errors.DictionaryMismatchError` naming *source* otherwise.
    """
    identity = DictionaryIdentity.of(table)
    if identity.hash != expected_hash:
        where = f" ({source})" if source is not None else ""
        raise DictionaryMismatchError(
            f"dictionary content hash {identity.short_hash} does not match the "
            f"declared {expected_hash[:12]}{where}: wrong or corrupt dictionary"
        )
    return identity
