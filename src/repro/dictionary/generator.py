"""Dictionary generation — Algorithm 1 of the paper (Section IV-C).

The generator consumes a (optionally preprocessed) training corpus of SMILES
strings and produces a :class:`~repro.dictionary.codec_table.CodecTable`:

1. count the occurrences of every substring of length ``[Lmin, Lmax]``
   (Lines 3–7),
2. seed the dictionary according to the pre-population policy (Section IV-B),
3. greedily select the ``T`` highest-rank substrings, discounting each
   candidate by its overlap with the patterns already selected (Lines 8–15).

``T`` defaults to the full symbol capacity of the chosen pre-population
policy, matching the paper's "dictionary size" parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import DictionaryError
from .codec_table import CodecTable
from .prepopulation import PrePopulation, capacity
from .ranking import RankTable, corpus_statistics, count_substrings
from .trie import Trie


@dataclass
class DictionaryConfig:
    """Parameters of Algorithm 1.

    Attributes
    ----------
    lmin:
        Minimum candidate substring length (paper: 2).
    lmax:
        Maximum candidate substring length (paper: swept over 5 / 8 / 15 in
        Figure 5; default 8).
    max_entries:
        Dictionary size ``T``.  ``None`` means "as many as the symbol space of
        the pre-population policy allows".
    prepopulation:
        Seeding policy (Section IV-B).
    min_occurrences:
        Candidates occurring fewer times are never considered.
    candidate_limit:
        Upper bound on the number of candidates kept after counting (highest
        initial rank first).  Bounds memory on very large corpora without
        changing the result in practice, since low-initial-rank candidates
        cannot win later (ranks only decrease).
    rank_mode:
        ``"savings"`` (default) ranks candidates by marginal compression gain;
        ``"coverage"`` is the paper's literal Equation 1.  See
        :func:`repro.dictionary.ranking.rank_value`.
    """

    lmin: int = 2
    lmax: int = 8
    max_entries: Optional[int] = None
    prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET
    min_occurrences: int = 2
    candidate_limit: Optional[int] = 200_000
    rank_mode: str = "savings"

    def __post_init__(self) -> None:
        if self.lmin < 1:
            raise DictionaryError(f"lmin must be >= 1, got {self.lmin}")
        if self.lmax < self.lmin:
            raise DictionaryError(f"lmax ({self.lmax}) must be >= lmin ({self.lmin})")
        if self.max_entries is not None and self.max_entries < 0:
            raise DictionaryError("max_entries must be non-negative")
        if self.rank_mode not in ("savings", "coverage"):
            raise DictionaryError(
                f"rank_mode must be 'savings' or 'coverage', got {self.rank_mode!r}"
            )

    def effective_size(self) -> int:
        """The dictionary size ``T`` actually used."""
        cap = capacity(self.prepopulation)
        return cap if self.max_entries is None else min(self.max_entries, cap)


@dataclass
class TrainingReport:
    """Diagnostics collected while training a dictionary."""

    config: DictionaryConfig
    corpus_stats: Dict[str, float] = field(default_factory=dict)
    candidates: int = 0
    selected: int = 0
    selected_patterns: List[str] = field(default_factory=list)
    selected_ranks: List[float] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"trained {self.selected} patterns from {self.candidates} candidates "
            f"over {int(self.corpus_stats.get('lines', 0))} SMILES "
            f"(Lmin={self.config.lmin}, Lmax={self.config.lmax}, "
            f"prepopulation={self.config.prepopulation.value})"
        )


class DictionaryGenerator:
    """Trains a :class:`CodecTable` from a corpus using Algorithm 1."""

    def __init__(self, config: Optional[DictionaryConfig] = None):
        self.config = config or DictionaryConfig()
        self.report: Optional[TrainingReport] = None

    def train(self, corpus: Sequence[str]) -> CodecTable:
        """Run Algorithm 1 on *corpus* and return the resulting codec table.

        The corpus is expected to already be preprocessed (Figure 2: the
        optional preprocessing happens before dictionary generation); the
        higher-level :class:`repro.core.codec.ZSmilesCodec` handles that.
        """
        config = self.config
        corpus = list(corpus)
        report = TrainingReport(config=config, corpus_stats=corpus_statistics(corpus))

        counts = count_substrings(
            corpus,
            lmin=config.lmin,
            lmax=config.lmax,
            min_occurrences=config.min_occurrences,
        )
        report.candidates = len(counts)

        table_size = config.effective_size()
        rank_table = RankTable(
            dict(counts),
            candidate_limit=config.candidate_limit,
            mode=config.rank_mode,
        )
        selected_trie = Trie()
        selected: List[str] = []
        ranks: List[float] = []

        while len(selected) < table_size:
            best = rank_table.pop_best(selected_trie)
            if best is None:
                break
            selected.append(best.pattern)
            ranks.append(best.rank)
            selected_trie.insert(best.pattern, best.pattern)

        report.selected = len(selected)
        report.selected_patterns = list(selected)
        report.selected_ranks = list(ranks)
        self.report = report

        metadata = {
            "lmin": str(config.lmin),
            "lmax": str(config.lmax),
            "prepopulation": config.prepopulation.value,
            "rank_mode": config.rank_mode,
            "trained_entries": str(len(selected)),
            "training_lines": str(int(report.corpus_stats.get("lines", 0))),
        }
        return CodecTable.from_patterns(
            selected,
            prepopulation=config.prepopulation,
            ranks=ranks,
            metadata=metadata,
        )


def train_dictionary(
    corpus: Iterable[str],
    lmin: int = 2,
    lmax: int = 8,
    max_entries: Optional[int] = None,
    prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET,
    min_occurrences: int = 2,
    rank_mode: str = "savings",
) -> CodecTable:
    """Convenience wrapper around :class:`DictionaryGenerator`.

    Parameters mirror :class:`DictionaryConfig`; see its documentation.
    """
    config = DictionaryConfig(
        lmin=lmin,
        lmax=lmax,
        max_entries=max_entries,
        prepopulation=prepopulation,
        min_occurrences=min_occurrences,
        rank_mode=rank_mode,
    )
    return DictionaryGenerator(config).train(list(corpus))
