"""Dictionary pre-population policies (Section IV-B of the paper).

Pre-population seeds the dictionary with single-character entries that map a
character to itself, guaranteeing that those characters never need the
two-character escape sequence.  The paper evaluates three policies in Table I:

* ``NONE`` — no seeding; any character outside the trained patterns is escaped.
* ``SMILES_ALPHABET`` — seed every character of the SMILES alphabet (the
  paper's best-performing and recommended policy).
* ``PRINTABLE`` — seed every printable ASCII character; safest, but it leaves
  only the extended-ASCII range available for multi-character patterns.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple

from ..smiles.alphabet import ESCAPE_CHAR, PRINTABLE_ASCII, SMILES_ALPHABET, symbol_code_points


class PrePopulation(enum.Enum):
    """Which character set is seeded into the dictionary before training."""

    NONE = "none"
    SMILES_ALPHABET = "smiles"
    PRINTABLE = "printable"

    @classmethod
    def from_name(cls, name: str) -> "PrePopulation":
        """Parse a user-facing name (CLI / experiment configs) into a policy."""
        normalized = name.strip().lower().replace("-", "_").replace(" ", "_")
        aliases = {
            "none": cls.NONE,
            "no": cls.NONE,
            "off": cls.NONE,
            "smiles": cls.SMILES_ALPHABET,
            "smiles_alphabet": cls.SMILES_ALPHABET,
            "alphabet": cls.SMILES_ALPHABET,
            "printable": cls.PRINTABLE,
            "printable_ascii": cls.PRINTABLE,
            "ascii": cls.PRINTABLE,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown pre-population policy {name!r}")
        return aliases[normalized]


def seeded_characters(policy: PrePopulation) -> FrozenSet[str]:
    """Characters that map to themselves under *policy*.

    The escape character (space) and line terminators are never seeded: space
    is reserved as the escape marker and newlines delimit SMILES records.
    """
    if policy is PrePopulation.NONE:
        chars: FrozenSet[str] = frozenset()
    elif policy is PrePopulation.SMILES_ALPHABET:
        chars = SMILES_ALPHABET
    elif policy is PrePopulation.PRINTABLE:
        chars = PRINTABLE_ASCII
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled policy {policy!r}")
    return frozenset(chars) - {ESCAPE_CHAR, "\n", "\r"}


def seed_entries(policy: PrePopulation) -> Dict[str, str]:
    """Identity (symbol → pattern) entries for the seeded characters."""
    return {ch: ch for ch in sorted(seeded_characters(policy))}


def available_symbols(policy: PrePopulation) -> Tuple[str, ...]:
    """Code points available for *multi-character* pattern symbols under *policy*.

    Symbols are always drawn from characters that cannot appear in a SMILES
    string (non-SMILES printable ASCII first, then the extended range), so a
    compressed record is never ambiguous.  The policies therefore differ in
    two ways: how many of those code points remain free for trained patterns
    (``PRINTABLE`` reserves the printable ones for identity entries) and
    whether uncovered input characters can fall back to an identity entry
    instead of the two-character escape (``NONE`` cannot — that is why the
    paper finds it inferior).
    """
    reserved = seeded_characters(policy)
    if policy is PrePopulation.NONE:
        return symbol_code_points(frozenset())
    return symbol_code_points(frozenset(reserved))


def capacity(policy: PrePopulation) -> int:
    """Maximum number of trained (multi-character) dictionary entries."""
    return len(available_symbols(policy))
