"""Character trie used for dictionary pattern matching.

The compression algorithm (Section IV-D1) matches every dictionary pattern
against every starting position of the input SMILES.  A trie makes that an
O(total match length) walk per position instead of one scan per pattern
(Fredkin 1960, reference [17] of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class TrieNode:
    """One node of the trie.

    Attributes
    ----------
    children:
        Mapping from next character to the child node.
    pattern:
        The complete pattern terminating at this node, or ``None``.
    payload:
        Arbitrary value attached to the terminating pattern (the codec stores
        the dictionary symbol here).
    """

    __slots__ = ("children", "pattern", "payload")

    def __init__(self) -> None:
        self.children: Dict[str, "TrieNode"] = {}
        self.pattern: Optional[str] = None
        self.payload: Optional[str] = None


class Trie:
    """Prefix tree over strings with optional payloads."""

    def __init__(self, items: Optional[Iterable[Tuple[str, Optional[str]]]] = None):
        self._root = TrieNode()
        self._size = 0
        self._max_length = 0
        if items is not None:
            for pattern, payload in items:
                self.insert(pattern, payload)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def insert(self, pattern: str, payload: Optional[str] = None) -> None:
        """Insert *pattern* with an optional *payload*.

        Re-inserting an existing pattern overwrites its payload but does not
        change the reported size.
        """
        if not pattern:
            raise ValueError("cannot insert the empty pattern")
        node = self._root
        for ch in pattern:
            node = node.children.setdefault(ch, TrieNode())
        if node.pattern is None:
            self._size += 1
        node.pattern = pattern
        node.payload = payload
        self._max_length = max(self._max_length, len(pattern))

    @classmethod
    def from_patterns(cls, patterns: Iterable[str]) -> "Trie":
        """Build a trie whose payloads equal the patterns themselves."""
        return cls((p, p) for p in patterns)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    @property
    def max_length(self) -> int:
        """Length of the longest inserted pattern (0 when empty)."""
        return self._max_length

    def __contains__(self, pattern: str) -> bool:
        node = self._find(pattern)
        return node is not None and node.pattern is not None

    def payload(self, pattern: str) -> Optional[str]:
        """Return the payload stored with *pattern*, or ``None`` when absent."""
        node = self._find(pattern)
        return node.payload if node is not None and node.pattern is not None else None

    def _find(self, pattern: str) -> Optional[TrieNode]:
        node = self._root
        for ch in pattern:
            node = node.children.get(ch)
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #
    def matches_at(self, text: str, start: int) -> List[Tuple[int, str, Optional[str]]]:
        """All dictionary patterns matching ``text[start:]`` at its beginning.

        Returns
        -------
        list of (length, pattern, payload)
            One entry per matching pattern, ordered by increasing length.
            The ordering is load-bearing: the shortest-path DP's pinned
            tie-break (see :mod:`repro.core.shortest_path`) examines
            candidates in exactly this order, and the flat-array kernel
            replicates it by walking its transition table depth-first.
        """
        out: List[Tuple[int, str, Optional[str]]] = []
        node = self._root
        pos = start
        n = len(text)
        while pos < n:
            node = node.children.get(text[pos])
            if node is None:
                break
            pos += 1
            if node.pattern is not None:
                out.append((pos - start, node.pattern, node.payload))
        return out

    def longest_match_at(self, text: str, start: int) -> Optional[Tuple[int, str, Optional[str]]]:
        """The longest pattern matching at *start*, or ``None``.

        Used by the greedy-matching ablation and by the overlap computation of
        the ranking step.
        """
        matches = self.matches_at(text, start)
        return matches[-1] if matches else None

    def iter_patterns(self) -> Iterator[Tuple[str, Optional[str]]]:
        """Yield every ``(pattern, payload)`` pair in lexicographic order."""
        stack: List[Tuple[TrieNode, str]] = [(self._root, "")]
        collected: List[Tuple[str, Optional[str]]] = []
        while stack:
            node, prefix = stack.pop()
            if node.pattern is not None:
                collected.append((node.pattern, node.payload))
            for ch, child in node.children.items():
                stack.append((child, prefix + ch))
        collected.sort(key=lambda item: item[0])
        yield from collected

    def coverage(self, text: str) -> int:
        """Number of characters of *text* covered by greedy longest matching.

        This is the "coverage" measure of Section IV-C used to rank candidate
        dictionaries.
        """
        covered = 0
        pos = 0
        n = len(text)
        while pos < n:
            match = self.longest_match_at(text, pos)
            if match is None:
                pos += 1
            else:
                covered += match[0]
                pos += match[0]
        return covered
