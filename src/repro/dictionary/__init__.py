"""Dictionary construction (Sections IV-B and IV-C of the paper)."""

from .analysis import DictionaryAnalysis, EntryUsage, analyse_dictionary, compare_dictionaries
from .codec_table import CodecTable, DictionaryEntry
from .generator import DictionaryConfig, DictionaryGenerator, TrainingReport, train_dictionary
from .prepopulation import PrePopulation, available_symbols, capacity, seed_entries, seeded_characters
from .ranking import RankTable, RankedPattern, count_substrings, pattern_overlap, rank_value
from .serialization import dumps, load, loads, save
from .trie import Trie, TrieNode

__all__ = [
    "DictionaryAnalysis",
    "EntryUsage",
    "analyse_dictionary",
    "compare_dictionaries",
    "CodecTable",
    "DictionaryEntry",
    "DictionaryConfig",
    "DictionaryGenerator",
    "TrainingReport",
    "train_dictionary",
    "PrePopulation",
    "available_symbols",
    "capacity",
    "seed_entries",
    "seeded_characters",
    "RankTable",
    "RankedPattern",
    "count_substrings",
    "pattern_overlap",
    "rank_value",
    "dumps",
    "load",
    "loads",
    "save",
    "Trie",
    "TrieNode",
]
