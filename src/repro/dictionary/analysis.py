"""Dictionary quality analysis.

The paper evaluates dictionaries only through the end-to-end compression
ratio; when tuning a shared dictionary in practice it is just as useful to
know *why* a dictionary performs the way it does: how much of the corpus its
entries cover, which entries actually get used by the optimal parse, and how
much each entry contributes to the savings.  This module computes those
diagnostics; the CLI's ``stats`` command and the ablation notebooks build on
it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.shortest_path import optimal_parse
from .codec_table import CodecTable


@dataclass
class EntryUsage:
    """Usage statistics of one dictionary entry over an analysed corpus.

    Attributes
    ----------
    pattern:
        The entry's expansion text.
    symbol:
        The entry's output symbol.
    uses:
        How many times the optimal parse emitted this entry.
    characters_covered:
        Total input characters those uses consumed.
    characters_saved:
        Input characters minus output characters attributable to the entry
        (``uses × (len(pattern) − 1)``).
    seeded:
        Whether the entry comes from pre-population.
    """

    pattern: str
    symbol: str
    uses: int = 0
    characters_covered: int = 0
    characters_saved: int = 0
    seeded: bool = False


@dataclass
class DictionaryAnalysis:
    """Corpus-level dictionary diagnostics produced by :func:`analyse_dictionary`.

    Attributes
    ----------
    total_input_chars:
        Characters of the analysed corpus (records only, no terminators).
    total_output_chars:
        Characters of the optimal-parse output.
    escape_units:
        Number of escaped literals the parse needed.
    coverage:
        Fraction of input characters consumed by dictionary matches (seeded or
        trained) rather than escapes.
    trained_coverage:
        Fraction of input characters consumed by *trained* (multi-character)
        entries — the part of the compression the training actually bought.
    usage:
        Per-entry statistics, sorted by characters saved (descending).
    unused_trained_entries:
        Trained patterns that the parse never used on this corpus; candidates
        for retraining with a different corpus or a larger ``Lmax``.
    """

    total_input_chars: int = 0
    total_output_chars: int = 0
    escape_units: int = 0
    coverage: float = 0.0
    trained_coverage: float = 0.0
    usage: List[EntryUsage] = field(default_factory=list)
    unused_trained_entries: List[str] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        """Output characters over input characters (no line terminators)."""
        if self.total_input_chars == 0:
            return 1.0
        return self.total_output_chars / self.total_input_chars

    def top_entries(self, count: int = 10) -> List[EntryUsage]:
        """The *count* entries contributing the most savings."""
        return self.usage[:count]


def analyse_dictionary(
    table: CodecTable,
    corpus: Sequence[str],
    limit: Optional[int] = None,
) -> DictionaryAnalysis:
    """Run the optimal parse over *corpus* and collect per-entry usage statistics.

    Parameters
    ----------
    table:
        The dictionary to analyse.
    corpus:
        Records to parse (already preprocessed if the codec would preprocess).
    limit:
        Analyse only the first *limit* records (``None`` = all).
    """
    records = list(corpus if limit is None else corpus[:limit])
    uses: Counter = Counter()
    covered: Counter = Counter()
    analysis = DictionaryAnalysis()

    for record in records:
        steps = optimal_parse(record, table.trie)
        analysis.total_input_chars += len(record)
        for step in steps:
            analysis.total_output_chars += step.cost
            if step.symbol is None:
                analysis.escape_units += 1
            else:
                uses[step.pattern] += 1
                covered[step.pattern] += step.length

    entry_usage: List[EntryUsage] = []
    matched_chars = 0
    trained_chars = 0
    for entry in table.entries:
        used = uses.get(entry.pattern, 0)
        chars = covered.get(entry.pattern, 0)
        matched_chars += chars
        if not entry.seeded:
            trained_chars += chars
        entry_usage.append(
            EntryUsage(
                pattern=entry.pattern,
                symbol=entry.symbol,
                uses=used,
                characters_covered=chars,
                characters_saved=used * (len(entry.pattern) - 1),
                seeded=entry.seeded,
            )
        )
    entry_usage.sort(key=lambda u: (-u.characters_saved, -u.uses, u.pattern))

    analysis.usage = entry_usage
    if analysis.total_input_chars:
        analysis.coverage = matched_chars / analysis.total_input_chars
        analysis.trained_coverage = trained_chars / analysis.total_input_chars
    analysis.unused_trained_entries = [
        u.pattern for u in entry_usage if not u.seeded and u.uses == 0
    ]
    return analysis


def compare_dictionaries(
    tables: Dict[str, CodecTable],
    corpus: Sequence[str],
    limit: Optional[int] = None,
) -> List[Tuple[str, float, float]]:
    """Compare several dictionaries on one corpus.

    Returns ``(name, ratio, trained_coverage)`` triples sorted by ratio —
    a compact way to see the Table II trade-off at the diagnostics level.
    """
    results: List[Tuple[str, float, float]] = []
    for name, table in tables.items():
        analysis = analyse_dictionary(table, corpus, limit=limit)
        results.append((name, analysis.ratio, analysis.trained_coverage))
    results.sort(key=lambda item: item[1])
    return results
