"""Measurement and reporting helpers shared by experiments and benchmarks."""

from .figures import BarChart, LineSeries, figure4_chart, figure5_chart
from .reporting import ResultTable, comparison_factor, percent_change
from .timing import Timer, throughput_mb_per_s, time_callable

__all__ = [
    "BarChart",
    "LineSeries",
    "figure4_chart",
    "figure5_chart",
    "ResultTable",
    "comparison_factor",
    "percent_change",
    "Timer",
    "throughput_mb_per_s",
    "time_callable",
]
