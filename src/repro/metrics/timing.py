"""Wall-clock timing helpers used by the experiment drivers and benchmarks."""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Timer:
    """Accumulates named wall-clock measurements.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("compress"):
    ...     _ = sum(range(1000))
    >>> timer.total("compress") >= 0.0
    True
    """

    samples: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding one sample to *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.samples.setdefault(name, []).append(time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self.samples.setdefault(name, []).append(seconds)

    def total(self, name: str) -> float:
        """Sum of all samples for *name* (0.0 when absent)."""
        return sum(self.samples.get(name, []))

    def mean(self, name: str) -> float:
        """Mean sample for *name* (0.0 when absent)."""
        values = self.samples.get(name, [])
        return statistics.fmean(values) if values else 0.0

    def count(self, name: str) -> int:
        """Number of samples recorded for *name*."""
        return len(self.samples.get(name, []))

    def names(self) -> List[str]:
        """All measurement names, in insertion order."""
        return list(self.samples)


def time_callable(fn: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-*repeats* wall-clock time of calling *fn* with no arguments."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best: Optional[float] = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    assert best is not None
    return best


def throughput_mb_per_s(byte_count: int, seconds: float) -> float:
    """Throughput in MB/s (0.0 when the duration is zero)."""
    if seconds <= 0:
        return 0.0
    return byte_count / seconds / 1e6
