"""Result-table formatting for the experiment drivers.

Every experiment produces a :class:`ResultTable` so the benchmark harness can
print the same rows the paper reports (Table I, Table II, Figure 4's bars,
Figure 5's series) in a uniform plain-text / markdown form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class ResultTable:
    """A small column-oriented result table with text rendering.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"Table I — dictionary optimizations"``).
    columns:
        Column headers.
    rows:
        Row values; each row must have one cell per column.
    notes:
        Free-form footnotes appended after the table.
    """

    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append a row (must match the number of columns)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}: {cells!r}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote."""
        self.notes.append(note)

    # ------------------------------------------------------------------ #
    def _formatted_cells(self) -> List[List[str]]:
        formatted: List[List[str]] = []
        for row in self.rows:
            formatted.append(
                [f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row]
            )
        return formatted

    def to_text(self) -> str:
        """Fixed-width plain-text rendering (used by the benchmark harness)."""
        cells = self._formatted_cells()
        widths = [len(col) for col in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (used by EXPERIMENTS.md)."""
        cells = self._formatted_cells()
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)

    def column(self, name: str) -> List[Cell]:
        """All values of the column *name*."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Cell]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def comparison_factor(baseline: float, candidate: float) -> float:
    """How many times better (smaller) *candidate* is than *baseline*.

    This is the paper's "×1.13 more than state of the art" style figure:
    ``baseline_ratio / candidate_ratio``.
    """
    if candidate <= 0:
        return float("inf")
    return baseline / candidate


def percent_change(reference: float, value: float) -> float:
    """Signed percentage change of *value* relative to *reference*."""
    if reference == 0:
        return 0.0
    return (value - reference) / reference * 100.0
