"""Plain-text figure rendering (bar charts and line series).

The paper's Figure 4 is a bar chart and Figure 5 a pair of line plots; this
reproduction has no plotting dependency, so the benchmark harness renders the
same data as unicode-free ASCII charts that survive log files and CI output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class BarChart:
    """Horizontal ASCII bar chart (used for the Figure 4 comparison).

    Attributes
    ----------
    title:
        Chart caption.
    values:
        ``(label, value)`` pairs, rendered in insertion order.
    width:
        Maximum bar width in characters.
    """

    title: str
    values: List[Tuple[str, float]] = field(default_factory=list)
    width: int = 50

    def add(self, label: str, value: float) -> None:
        """Append one bar."""
        if value < 0:
            raise ValueError("bar values must be non-negative")
        self.values.append((label, value))

    def render(self) -> str:
        """Render the chart as fixed-width text."""
        if not self.values:
            return f"{self.title}\n(no data)"
        label_width = max(len(label) for label, _ in self.values)
        maximum = max(value for _, value in self.values) or 1.0
        lines = [self.title]
        for label, value in self.values:
            bar = "#" * max(1, int(round(value / maximum * self.width)))
            lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}")
        return "\n".join(lines)


@dataclass
class LineSeries:
    """ASCII multi-series line/column rendering (used for the Figure 5 sweeps).

    The x axis is a small set of discrete parameter values (e.g. ``Lmax``), so
    the rendering is a column per x value with one row per series plus a
    sparkline-style bar for each cell.
    """

    title: str
    x_label: str
    x_values: Sequence[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    width: int = 30

    def add_series(self, name: str, values: Sequence[float]) -> None:
        """Add one named series; must have one value per x value."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(self.x_values)} x points"
            )
        self.series[name] = list(values)

    def render(self) -> str:
        """Render all series as labelled rows of proportional bars."""
        if not self.series:
            return f"{self.title}\n(no data)"
        lines = [self.title]
        maximum = max(max(values) for values in self.series.values()) or 1.0
        name_width = max(len(name) for name in self.series)
        for name, values in self.series.items():
            lines.append(name)
            for x, value in zip(self.x_values, values):
                bar = "#" * max(1, int(round(value / maximum * self.width)))
                lines.append(
                    f"  {self.x_label}={x!s:<6} | {bar} {value:.3f}"
                )
        _ = name_width  # alignment handled per-row; keep computed width for future use
        return "\n".join(lines)


def figure4_chart(ratios: Dict[str, float], order: Sequence[str]) -> BarChart:
    """Build the Figure 4 bar chart from a tool → ratio mapping."""
    chart = BarChart(title="Figure 4 — compression ratio by tool (lower is better)")
    for name in order:
        if name in ratios:
            chart.add(name, ratios[name])
    return chart


def figure5_chart(
    operation: str,
    x_values: Sequence[int],
    series: Dict[str, List[float]],
) -> LineSeries:
    """Build one Figure 5 sub-chart from normalized-time series."""
    chart = LineSeries(
        title=f"Figure 5 — normalized {operation} time vs Lmax (lower is better)",
        x_label="Lmax",
        x_values=list(x_values),
    )
    for name, values in series.items():
        chart.add_series(name, values)
    return chart
