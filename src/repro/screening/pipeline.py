"""End-to-end virtual screening campaign over a compressed library.

This is the paper's use case stitched together from the library's pieces:

1. the ligand library is stored compressed — as a ``.zsmi`` file (one
   record per line, random access preserved), or packed into a sharded
   ``.zss`` library served by :class:`~repro.library.CorpusLibrary`;
2. the campaign streams or randomly samples ligands out of the compressed
   library, scores them against one or more pockets, and writes a
   score-decorated output;
3. domain experts later pull individual hits back out of the compressed
   library by record index — without decompressing anything else.

The campaign serves ligands through the shared
:class:`~repro.store.protocol.RecordReader` protocol
(:func:`~repro.store.open_reader` picks the implementation), so the same
``run()`` accepts a flat ``.zsmi`` path, a single ``.zss`` store, or a
sharded library directory / ``library.json`` manifest.

The pipeline exists both as a realistic integration test of the whole stack
and as the substrate for the worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.codec import ZSmilesCodec
from ..core.random_access import LineIndex, RandomAccessReader
from ..datasets.io import SmiRecord, write_smi
from ..engine import ZSmilesEngine
from ..errors import ScreeningError
from ..library import LibraryInfo, is_packed_path, pack_library
from ..server.protocol import is_url
from ..store import RecordReader, open_reader
from .docking import DEFAULT_POCKETS, PocketModel, dock_score, top_hits
from .storage import StorageFootprint, measure_footprint

PathLike = Union[str, Path]


@dataclass
class CampaignResult:
    """Outcome of one screening campaign run.

    Attributes
    ----------
    pocket_results:
        Mapping from pocket name to the scored ``(smiles, score)`` list.
    hits:
        Mapping from pocket name to the top hits requested.
    footprint:
        Storage footprint of the ligand library.
    library_path:
        Path of the compressed library used by the campaign.
    sampled_indices:
        Line numbers scored when the campaign ran in sampling mode.
    """

    pocket_results: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)
    hits: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)
    footprint: Optional[StorageFootprint] = None
    library_path: Optional[Path] = None
    sampled_indices: List[int] = field(default_factory=list)

    def hit_smiles(self, pocket: str) -> List[str]:
        """Just the SMILES of the hits for *pocket*."""
        return [smiles for smiles, _ in self.hits.get(pocket, [])]


class ScreeningCampaign:
    """Drives a screening campaign against a compressed ligand library."""

    def __init__(
        self,
        codec: Union[ZSmilesCodec, ZSmilesEngine],
        pockets: Sequence[PocketModel] = DEFAULT_POCKETS,
        top_k: int = 25,
    ):
        if top_k < 1:
            raise ScreeningError("top_k must be >= 1")
        if isinstance(codec, ZSmilesEngine):
            self.engine = codec
        else:
            self.engine = ZSmilesEngine.from_codec(codec)
        self.codec = self.engine.codec
        self.pockets = list(pockets)
        self.top_k = top_k

    # ------------------------------------------------------------------ #
    # Library preparation
    # ------------------------------------------------------------------ #
    def prepare_library(
        self, smiles: Sequence[str], directory: PathLike, name: str = "library"
    ) -> Tuple[Path, LineIndex, StorageFootprint]:
        """Write, compress and index the ligand library.

        Returns the compressed library path, its line index and the measured
        storage footprint.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        smi_path = directory / f"{name}.smi"
        write_smi(smi_path, smiles)
        zsmi_path = directory / f"{name}.zsmi"
        self.engine.compress_file(smi_path, zsmi_path)
        index = LineIndex.build(zsmi_path)
        index.save(LineIndex.default_path(zsmi_path))
        footprint = measure_footprint(list(smiles), self.codec)
        return zsmi_path, index, footprint

    def prepare_packed_library(
        self,
        smiles: Sequence[str],
        directory: PathLike,
        name: str = "library",
        shards: int = 1,
        records_per_block: int = 256,
    ) -> Tuple[Path, LibraryInfo, StorageFootprint]:
        """Pack the ligand library into a sharded ``.zss`` library.

        Returns the library directory (servable by ``run()`` directly), the
        pack summary and the measured storage footprint.  Prefer this over
        :meth:`prepare_library` at scale: shards pack through the engine's
        parallel batch surface and serve with block-level caching.
        """
        directory = Path(directory)
        library_dir = directory / f"{name}.library"
        info = pack_library(
            library_dir,
            smiles,
            self.engine,
            shards=shards,
            records_per_block=records_per_block,
        )
        footprint = measure_footprint(list(smiles), self.codec)
        return library_dir, info, footprint

    # ------------------------------------------------------------------ #
    # Campaign execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        library_path: PathLike,
        index: Optional[LineIndex] = None,
        sample: Optional[int] = None,
        seed: int = 0,
        footprint: Optional[StorageFootprint] = None,
    ) -> CampaignResult:
        """Score the (possibly sampled) library against every pocket.

        Parameters
        ----------
        library_path:
            Compressed ligand library: a flat ``.zsmi`` file, a packed
            ``.zss`` store, a sharded library directory / ``library.json``
            manifest, or the ``http://`` URL of a running corpus server
            (``zsmiles serve``) — the campaign then screens a *remote*
            library, fetching only the ligands it scores.
        index:
            Pre-built line index for the flat layout; ignored for packed
            libraries (their block index is part of the format).
        sample:
            When given, only this many randomly chosen ligands are scored —
            exercising the random-access path the paper designs for.  ``None``
            scores the whole library.
        seed:
            Seed for the sampling RNG.
        footprint:
            Pre-measured storage footprint to attach to the result.
        """
        reader: RecordReader
        if is_url(library_path):
            # A remote corpus server: the server decodes with its own codec.
            reader = open_reader(library_path)
        else:
            library_path = Path(library_path)
            if index is not None and not is_packed_path(library_path):
                reader = RandomAccessReader(library_path, index=index, codec=self.codec)
            else:
                reader = open_reader(library_path, codec=self.codec)
        result = CampaignResult(library_path=library_path, footprint=footprint)
        with reader:
            if sample is not None:
                if sample < 1:
                    raise ScreeningError("sample must be >= 1")
                rng = np.random.default_rng(seed)
                count = min(sample, len(reader))
                indices = sorted(
                    int(i) for i in rng.choice(len(reader), size=count, replace=False)
                )
                result.sampled_indices = indices
                ligands = reader.get_many(indices)
            else:
                ligands = list(reader.iter_all())

        for pocket in self.pockets:
            scored = [(smiles, dock_score(smiles, pocket)) for smiles in ligands]
            result.pocket_results[pocket.name] = scored
            result.hits[pocket.name] = top_hits(scored, self.top_k)
        return result

    # ------------------------------------------------------------------ #
    # Output handling
    # ------------------------------------------------------------------ #
    def write_results(self, result: CampaignResult, directory: PathLike) -> Dict[str, Path]:
        """Write one score-decorated ``.smi`` file per pocket; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        for pocket_name, scored in result.pocket_results.items():
            out_path = directory / f"scores_{pocket_name}.smi"
            write_smi(
                out_path,
                (SmiRecord(smiles=s, name=pocket_name, score=score) for s, score in scored),
            )
            paths[pocket_name] = out_path
        return paths

    def fetch_hit(self, library_path: PathLike, line: int) -> str:
        """Random-access retrieval of a single ligand from the compressed library.

        Works against any layout ``run()`` accepts — flat, ``.zss``, or a
        sharded library — touching only the line / block that holds the hit.
        """
        with open_reader(library_path, codec=self.codec) as reader:
            return reader.get(line)
