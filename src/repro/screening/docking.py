"""Toy docking-score model.

The paper's motivating use case (Section I) is an extreme-scale virtual
screening campaign: a huge ligand library is scored against one or more
protein pockets and the screening output decorates the input SMILES with
interaction strengths.  The real scoring functions (e.g. LiGen's in the
EXSCALATE platform) are out of scope; this module provides a deterministic,
cheap surrogate with the properties the storage experiments need:

* a score is a pure function of the ligand SMILES and the target identifier,
  so compressed and uncompressed pipelines must produce identical results;
* the score distribution is long-tailed like real docking scores (most
  ligands are mediocre, a few are promising);
* scoring is fast enough to run over tens of thousands of ligands in tests.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ScreeningError
from ..smiles.tokenizer import TokenType, tokenize


@dataclass(frozen=True)
class PocketModel:
    """A screening target ("pocket") with simple physico-chemical preferences.

    Attributes
    ----------
    name:
        Target identifier (e.g. a protein / pocket name).
    preferred_size:
        Heavy-atom count the pocket accommodates best.
    aromatic_affinity:
        Weight of aromatic-atom interactions.
    polar_affinity:
        Weight of heteroatom (N/O/S) interactions.
    seed_salt:
        Extra string hashed into the deterministic noise term so different
        pockets rank ligands differently.
    """

    name: str
    preferred_size: int = 30
    aromatic_affinity: float = 0.8
    polar_affinity: float = 0.6
    seed_salt: str = ""


#: A small panel of default pockets, echoing the multi-target campaigns the
#: paper mentions (evaluating compounds against multiple target proteins).
DEFAULT_POCKETS: Tuple[PocketModel, ...] = (
    PocketModel(name="3CLpro", preferred_size=32, aromatic_affinity=0.9, polar_affinity=0.7),
    PocketModel(name="PLpro", preferred_size=38, aromatic_affinity=0.7, polar_affinity=0.8),
    PocketModel(name="RdRp", preferred_size=45, aromatic_affinity=0.5, polar_affinity=1.0),
)


def _ligand_features(smiles: str) -> Dict[str, float]:
    """Cheap structural features extracted from the SMILES text."""
    try:
        tokens = tokenize(smiles)
    except Exception as exc:
        raise ScreeningError(f"cannot score unparsable SMILES {smiles!r}: {exc}") from exc
    heavy = 0
    aromatic = 0
    polar = 0
    rings = 0
    branches = 0
    for tok in tokens:
        if tok.type in (TokenType.ATOM, TokenType.BRACKET_ATOM):
            heavy += 1
            text = tok.text
            if text[0].islower() or (text.startswith("[") and any(c.islower() for c in text[1:3])):
                aromatic += 1
            if any(ch in text for ch in "NOSnos"):
                polar += 1
        elif tok.type is TokenType.RING_BOND:
            rings += 0.5  # two tokens per ring
        elif tok.type is TokenType.BRANCH_OPEN:
            branches += 1
    return {
        "heavy": float(heavy),
        "aromatic": float(aromatic),
        "polar": float(polar),
        "rings": float(rings),
        "branches": float(branches),
    }


def _deterministic_noise(smiles: str, pocket: PocketModel) -> float:
    """Uniform pseudo-random term in [0, 1) derived from the (ligand, pocket) pair."""
    digest = hashlib.sha256((smiles + "|" + pocket.name + pocket.seed_salt).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def dock_score(smiles: str, pocket: PocketModel) -> float:
    """Deterministic docking-style score (more negative is better).

    The functional form mixes a size-match term, aromatic/polar interaction
    terms and a ligand-specific pseudo-random contribution; it is not a
    physical model, but it is stable, fast and discriminative, which is all
    the storage-pipeline experiments require.
    """
    features = _ligand_features(smiles)
    size_penalty = abs(features["heavy"] - pocket.preferred_size) / max(pocket.preferred_size, 1)
    interaction = (
        pocket.aromatic_affinity * math.sqrt(features["aromatic"])
        + pocket.polar_affinity * math.sqrt(features["polar"])
        + 0.3 * features["rings"]
    )
    noise = _deterministic_noise(smiles, pocket)
    return -(interaction * (1.0 - 0.5 * size_penalty) + 2.0 * noise)


def dock_library(
    smiles_list: Iterable[str], pocket: PocketModel
) -> List[Tuple[str, float]]:
    """Score every ligand of *smiles_list* against *pocket*."""
    return [(smiles, dock_score(smiles, pocket)) for smiles in smiles_list]


def top_hits(
    scored: Sequence[Tuple[str, float]], count: int
) -> List[Tuple[str, float]]:
    """The *count* best (most negative) scoring ligands, best first.

    The order is *total*: equal scores tie-break on the SMILES text, and
    identical ``(smiles, score)`` duplicates keep their input order (the
    sort is stable).  Input order therefore never influences distinct hits,
    so a parallel scorer that reorders its shards cannot reorder hit lists.
    """
    if count < 0:
        raise ScreeningError("count must be non-negative")
    return sorted(scored, key=lambda item: (item[1], item[0]))[:count]
