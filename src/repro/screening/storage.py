"""Storage-footprint accounting for screening campaigns.

Section I of the paper motivates ZSMILES with the cold-storage cost of
extreme-scale campaigns (≈72 TB for the Marconi100 run).  This module turns
per-file byte counts into campaign-level projections: how much space the
input library and the score-decorated output occupy raw, ZSMILES-compressed
(``.zsmi``), packed into the block-compressed ``.zss`` store (framing and
checksums included) and with an additional bzip2 cold-storage pass.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.codec import ZSmilesCodec
from ..baselines.bzip2_codec import bzip2_over_lines

#: Block granularity used when measuring the ``.zss`` option.
STORE_BLOCK_RECORDS = 256


@dataclass(frozen=True)
class StorageFootprint:
    """Byte counts of one dataset under the storage options considered.

    Attributes
    ----------
    raw_bytes:
        Plain ``.smi`` storage (one record per line).
    zsmiles_bytes:
        ZSMILES-compressed ``.zsmi`` storage (still line separable).
    zsmiles_bzip2_bytes:
        ``.zsmi`` further compressed with file-wide bzip2 for cold storage.
    records:
        Number of records measured.
    zss_bytes:
        Block-compressed ``.zss`` store size, container framing (footer
        index, checksums) included; the dictionary is shipped separately,
        as with ``.zsmi``.  ``0`` when the option was not measured.
    """

    raw_bytes: int
    zsmiles_bytes: int
    zsmiles_bzip2_bytes: int
    records: int
    zss_bytes: int = 0

    @property
    def zsmiles_ratio(self) -> float:
        """ZSMILES bytes over raw bytes."""
        return self.zsmiles_bytes / self.raw_bytes if self.raw_bytes else 1.0

    @property
    def zss_ratio(self) -> float:
        """Packed ``.zss`` store bytes over raw bytes."""
        return self.zss_bytes / self.raw_bytes if self.raw_bytes else 1.0

    @property
    def cold_storage_ratio(self) -> float:
        """ZSMILES + bzip2 bytes over raw bytes."""
        return self.zsmiles_bzip2_bytes / self.raw_bytes if self.raw_bytes else 1.0

    def scaled(self, target_records: int) -> Dict[str, float]:
        """Linear projection of the byte counts to *target_records* records.

        Used to extrapolate the measured sample to campaign scale (e.g. the
        paper's 72 TB example), assuming record statistics stay uniform.
        """
        if self.records == 0:
            return {
                "raw_bytes": 0.0,
                "zsmiles_bytes": 0.0,
                "zsmiles_bzip2_bytes": 0.0,
                "zss_bytes": 0.0,
            }
        factor = target_records / self.records
        return {
            "raw_bytes": self.raw_bytes * factor,
            "zsmiles_bytes": self.zsmiles_bytes * factor,
            "zsmiles_bzip2_bytes": self.zsmiles_bzip2_bytes * factor,
            "zss_bytes": self.zss_bytes * factor,
        }


def measure_footprint(
    corpus: Sequence[str], codec: ZSmilesCodec, compressed: Optional[Sequence[str]] = None
) -> StorageFootprint:
    """Measure the storage footprint of *corpus* under the three options.

    Parameters
    ----------
    corpus:
        Plain SMILES records.
    codec:
        Trained codec used for the ZSMILES option.
    compressed:
        Pre-computed compressed records (optional, to avoid compressing twice
        when the caller already has them).

    The ``.zss`` option is measured by packing the compressed records into an
    in-memory store at :data:`STORE_BLOCK_RECORDS` records per block, so its
    byte count includes the real container framing (footer index, checksums).
    """
    from ..store.writer import pack_compressed_records

    compressed_records = (
        list(compressed) if compressed is not None else [codec.compress(s) for s in corpus]
    )
    raw_bytes = sum(len(s) + 1 for s in corpus)
    zsmiles_bytes = sum(len(s) + 1 for s in compressed_records)
    bzip2_stage = bzip2_over_lines(compressed_records) if compressed_records else 1.0
    store_buffer = io.BytesIO()
    store_info = pack_compressed_records(
        store_buffer, compressed_records, records_per_block=STORE_BLOCK_RECORDS
    )
    return StorageFootprint(
        raw_bytes=raw_bytes,
        zsmiles_bytes=zsmiles_bytes,
        zsmiles_bzip2_bytes=int(round(zsmiles_bytes * bzip2_stage)),
        records=len(corpus),
        zss_bytes=store_info.file_bytes,
    )


def format_bytes(count: float) -> str:
    """Human-readable byte count (binary prefixes), used by reports and the CLI."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(value) < 1024.0 or unit == "PiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} PiB"
