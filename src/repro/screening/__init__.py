"""Virtual screening substrate: the paper's motivating use case (Section I)."""

from .docking import DEFAULT_POCKETS, PocketModel, dock_library, dock_score, top_hits
from .pipeline import CampaignResult, ScreeningCampaign
from .storage import StorageFootprint, format_bytes, measure_footprint

__all__ = [
    "DEFAULT_POCKETS",
    "PocketModel",
    "dock_library",
    "dock_score",
    "top_hits",
    "CampaignResult",
    "ScreeningCampaign",
    "StorageFootprint",
    "format_bytes",
    "measure_footprint",
]
