"""Sampling utilities for SMILES corpora.

The paper's Table I trains dictionaries on "a sample of random 50000 SMILES
from the mixed dataset"; domain experts likewise sample subsets of multi-TB
libraries.  These helpers provide seeded random samples, reservoir sampling
over streams of unknown length, and train/test splits.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, TypeVar

import numpy as np

from ..errors import DatasetError

T = TypeVar("T")


def random_sample(items: Sequence[T], count: int, seed: int = 0) -> List[T]:
    """Sample *count* items without replacement (all items when count >= len)."""
    if count < 0:
        raise DatasetError("sample count must be non-negative")
    if count >= len(items):
        return list(items)
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(items), size=count, replace=False)
    return [items[int(i)] for i in indices]


def reservoir_sample(stream: Iterable[T], count: int, seed: int = 0) -> List[T]:
    """Uniform sample of *count* items from a stream of unknown length.

    Classic Algorithm R; suitable for sampling training SMILES out of files
    too large to hold in memory.
    """
    if count < 0:
        raise DatasetError("sample count must be non-negative")
    rng = np.random.default_rng(seed)
    reservoir: List[T] = []
    for index, item in enumerate(stream):
        if index < count:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, index + 1))
            if j < count:
                reservoir[j] = item
    return reservoir


def train_test_split(
    items: Sequence[T], train_fraction: float = 0.5, seed: int = 0
) -> Tuple[List[T], List[T]]:
    """Shuffle and split *items* into (train, test) partitions."""
    if not 0.0 <= train_fraction <= 1.0:
        raise DatasetError("train_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    cut = int(round(train_fraction * len(items)))
    train = [items[int(i)] for i in order[:cut]]
    test = [items[int(i)] for i in order[cut:]]
    return train, test


def chunked(items: Sequence[T], chunk_size: int) -> Iterator[List[T]]:
    """Yield consecutive chunks of *chunk_size* items (last chunk may be short)."""
    if chunk_size <= 0:
        raise DatasetError("chunk_size must be positive")
    for start in range(0, len(items), chunk_size):
        yield list(items[start : start + chunk_size])
