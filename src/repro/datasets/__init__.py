"""Synthetic SMILES datasets standing in for the paper's corpora (Section V-A)."""

from . import exscalate, gdb17, mediate, mixed
from .fragments import FRAGMENT_LIBRARY, FragmentSpec, fragment_names, get_fragment
from .generator import (
    GenerationProfile,
    MoleculeGenerator,
    dataset_statistics,
    generate_dataset,
)
from .io import SmiRecord, file_size_bytes, iter_smi, parse_smi_line, read_smi, read_smiles, write_smi
from .sampling import chunked, random_sample, reservoir_sample, train_test_split

__all__ = [
    "exscalate",
    "gdb17",
    "mediate",
    "mixed",
    "FRAGMENT_LIBRARY",
    "FragmentSpec",
    "fragment_names",
    "get_fragment",
    "GenerationProfile",
    "MoleculeGenerator",
    "dataset_statistics",
    "generate_dataset",
    "SmiRecord",
    "file_size_bytes",
    "iter_smi",
    "parse_smi_line",
    "read_smi",
    "read_smiles",
    "write_smi",
    "chunked",
    "random_sample",
    "reservoir_sample",
    "train_test_split",
]
