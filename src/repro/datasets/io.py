""".smi file input/output.

A ``.smi`` file stores one molecule per line: the SMILES string, optionally
followed by whitespace and a molecule name / identifier.  Screening output
files additionally carry a score column.  These helpers read and write both
flavours while preserving the one-record-per-line contract that the ZSMILES
random-access guarantee depends on.

Packed corpora are read transparently: a path ending in ``.zss`` (the
block-compressed store, :mod:`repro.store`), a sharded library directory or
a ``library.json`` manifest (:mod:`repro.library`) is decoded through its
embedded dictionary — or a caller-supplied codec — and its records flow
through the same parsing helpers as plain lines.  An ``http://`` URL
streams the corpus from a running server (:mod:`repro.server`) the same
way — the server decodes, so no local dictionary is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import DatasetError

PathLike = Union[str, Path]

#: Suffix of packed corpus stores; must equal repro.store.format.STORE_SUFFIX
#: (asserted there is a single source of truth in tests/datasets/test_io.py).
#: Kept as a literal so plain .smi reads never import the store/engine stack.
STORE_SUFFIX = ".zss"


@dataclass(frozen=True)
class SmiRecord:
    """One parsed ``.smi`` line.

    Attributes
    ----------
    smiles:
        The SMILES column (always present).
    name:
        The optional molecule identifier column.
    score:
        The optional numeric score column (screening outputs).
    """

    smiles: str
    name: Optional[str] = None
    score: Optional[float] = None

    def to_line(self) -> str:
        """Render the record back to a ``.smi`` line."""
        parts: List[str] = [self.smiles]
        if self.name is not None:
            parts.append(self.name)
        if self.score is not None:
            parts.append(f"{self.score:.4f}")
        return "\t".join(parts)


def parse_smi_line(line: str) -> SmiRecord:
    """Parse one ``.smi`` line into a :class:`SmiRecord`.

    The last column is treated as a score when it parses as a float and at
    least three columns are present; a second column is otherwise the name.
    """
    stripped = line.strip()
    if not stripped:
        raise DatasetError("empty .smi line")
    parts = stripped.split()
    smiles = parts[0]
    name: Optional[str] = None
    score: Optional[float] = None
    if len(parts) >= 3:
        try:
            score = float(parts[-1])
            name = " ".join(parts[1:-1])
        except ValueError:
            name = " ".join(parts[1:])
    elif len(parts) == 2:
        try:
            score = float(parts[1])
        except ValueError:
            name = parts[1]
    return SmiRecord(smiles=smiles, name=name, score=score)


def read_smi(
    path: PathLike, smiles_only: bool = False, codec: Optional[object] = None
) -> List[SmiRecord]:
    """Read a ``.smi`` file eagerly.

    Parameters
    ----------
    path:
        File to read.
    smiles_only:
        When ``True``, name/score columns are dropped (slightly faster and
        what the compression experiments need).
    codec:
        Codec for decoding a ``.zss`` packed corpus (defaults to the store's
        embedded dictionary); ignored for flat files.
    """
    return list(iter_smi(path, smiles_only=smiles_only, codec=codec))


def iter_smi(
    path: PathLike, smiles_only: bool = False, codec: Optional[object] = None
) -> Iterator[SmiRecord]:
    """Lazily iterate over the records of a ``.smi`` file (blank lines skipped).

    A ``.zss`` packed corpus is served through :class:`repro.store.CorpusStore`
    — decoded with *codec*, or the store's embedded dictionary when ``None``.
    """
    for line in _iter_record_lines(path, codec=codec):
        if not line.strip():
            continue
        if smiles_only:
            yield SmiRecord(smiles=line.split()[0])
        else:
            yield parse_smi_line(line)


def _iter_record_lines(path: PathLike, codec: Optional[object] = None) -> Iterator[str]:
    """Yield terminator-stripped record lines from a flat or packed corpus."""
    # The URL check must run before Path() collapses the "//"; imported
    # lazily like the packed layouts below.
    from ..server.protocol import is_url

    if is_url(path):
        # A remote corpus server (zsmiles serve): stream the whole range.
        from ..server.client import CorpusClient

        with CorpusClient(str(path)) as client:
            yield from client.iter_all()
        return
    path = Path(path)
    if path.is_dir() or path.suffix == ".json":
        # A sharded library (directory with library.json, or the manifest
        # itself).  Imported lazily, like the store below; a directory
        # without a manifest falls through to the flat open below, failing
        # the way it always has.
        from ..library import CorpusLibrary, resolve_manifest_path

        if resolve_manifest_path(path) is not None:
            with CorpusLibrary.open(path, codec=codec) as library:  # type: ignore[arg-type]
                for shard_no in range(library.shard_count):
                    if library.shard(shard_no).codec is None:
                        raise DatasetError(
                            f"{path}: packed corpus has no embedded dictionary; "
                            "pass codec= to decode it"
                        )
                yield from library.iter_all()
            return
    if path.suffix == STORE_SUFFIX:
        # Imported lazily: repro.store.reader pulls in the codec stack, which
        # this light-weight I/O module must not load for plain .smi reads.
        from ..store.reader import CorpusStore

        with CorpusStore(path, codec=codec) as store:  # type: ignore[arg-type]
            for shard in store.shards:
                if shard.codec is None:
                    raise DatasetError(
                        f"{path}: packed corpus has no embedded dictionary; "
                        "pass codec= to decode it"
                    )
            yield from store.iter_all()
        return
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            yield raw.rstrip("\r\n")


def read_smiles(path: PathLike, codec: Optional[object] = None) -> List[str]:
    """Read only the SMILES column of a ``.smi`` file (or ``.zss`` store)."""
    return [record.smiles for record in iter_smi(path, smiles_only=True, codec=codec)]


def write_smi(path: PathLike, records: Iterable[Union[str, SmiRecord, Tuple[str, float]]]) -> int:
    """Write records to a ``.smi`` file; returns the number of lines written.

    Accepts plain SMILES strings, :class:`SmiRecord` objects or
    ``(smiles, score)`` tuples.
    """
    count = 0
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        for item in records:
            if isinstance(item, SmiRecord):
                line = item.to_line()
            elif isinstance(item, tuple):
                smiles, score = item
                line = SmiRecord(smiles=smiles, score=float(score)).to_line()
            else:
                line = item
            if "\n" in line or "\r" in line:
                raise DatasetError("a .smi record must not contain line terminators")
            handle.write(line)
            handle.write("\n")
            count += 1
    return count


def file_size_bytes(path: PathLike) -> int:
    """Size of *path* in bytes (convenience for compression-ratio bookkeeping)."""
    return Path(path).stat().st_size
