"""GDB-17-like synthetic dataset.

GDB-17 (Ruddigkeit et al. 2012, reference [18] of the paper) enumerates small
organic molecules with at most 17 heavy atoms drawn from a narrow element set.
The paper's Table II shows that a dictionary trained on GDB-17 transfers
poorly to other libraries — the corpus is *homogeneous*.  This profile
reproduces that texture: small molecules, a narrow fragment vocabulary with
small saturated rings, almost no decorations, no stereochemistry and no
charges.
"""

from __future__ import annotations

from typing import List

from .generator import GenerationProfile, MoleculeGenerator

#: Default sampling seed, kept distinct per dataset so MIXED is genuinely varied.
DEFAULT_SEED = 17


def profile() -> GenerationProfile:
    """The GDB-17-like generation profile."""
    return GenerationProfile(
        name="GDB-17",
        min_heavy_atoms=8,
        max_heavy_atoms=17,
        fragment_weights={
            # Narrow, ring-dominated vocabulary: mostly plain carbon rings with
            # a handful of small heteroatom decorations.
            "cyclopropane": 3.0,
            "cyclopentane": 4.0,
            "cyclohexane": 4.0,
            "oxetane": 2.0,
            "benzene": 3.0,
            "furan": 1.5,
            "methyl": 4.0,
            "ethyl": 2.0,
            "hydroxyl": 1.5,
            "amine": 1.5,
            "nitrile": 1.0,
            "carbonyl": 1.0,
        },
        decoration_probability=0.15,
        max_attachment_degree=3,
        scaffold_count=60,
        substituent_range=(1, 2),
    )


def generator(seed: int = DEFAULT_SEED) -> MoleculeGenerator:
    """A seeded generator for the GDB-17-like profile."""
    return MoleculeGenerator(profile(), seed=seed)


def generate(count: int, seed: int = DEFAULT_SEED) -> List[str]:
    """Generate *count* GDB-17-like SMILES strings."""
    return generator(seed).generate(count)
