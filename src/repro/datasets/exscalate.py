"""EXSCALATE-like synthetic dataset.

The EXSCALATE dataset of the paper is the ligand library of a real
extreme-scale virtual screening run (Gadioli et al. 2023, reference [2]): an
elaborated, lead-like chemical space stored as SMILES, where each record may
also carry the docking score produced by the campaign.  The real data is
proprietary, so this module generates a lead-like corpus of intermediate
diversity (between GDB-17 and MEDIATE, matching its Table II behaviour) and a
scored variant that exercises the screening-output code path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .generator import GenerationProfile, MoleculeGenerator

#: Default sampling seed, kept distinct per dataset so MIXED is genuinely varied.
DEFAULT_SEED = 23


def profile() -> GenerationProfile:
    """The EXSCALATE-like generation profile."""
    return GenerationProfile(
        name="EXSCALATE",
        min_heavy_atoms=20,
        max_heavy_atoms=55,
        fragment_weights={
            # Lead-like vocabulary: aromatic-heavy with amide/sulfonamide
            # linkers, fewer exotic decorations than MEDIATE.
            "benzene": 6.0,
            "pyridine": 3.0,
            "pyrimidine": 2.0,
            "thiophene": 1.0,
            "pyrrole": 1.0,
            "cyclohexane": 1.5,
            "piperidine": 2.0,
            "piperazine": 2.0,
            "morpholine": 1.5,
            "methyl": 2.5,
            "ethyl": 1.5,
            "ether_linker": 2.0,
            "alkene_linker": 0.8,
            "chiral_carbon": 1.0,
            "hydroxyl": 1.5,
            "methoxy": 2.0,
            "amine": 1.5,
            "fluoro": 2.0,
            "chloro": 1.5,
            "carbonyl": 1.5,
            "amide": 3.5,
            "sulfonamide": 1.5,
            "carboxylic_acid": 1.0,
            "trifluoromethyl": 1.0,
            "nitrile": 1.0,
        },
        decoration_probability=0.35,
        max_attachment_degree=3,
        scaffold_count=150,
        substituent_range=(1, 3),
    )


def generator(seed: int = DEFAULT_SEED) -> MoleculeGenerator:
    """A seeded generator for the EXSCALATE-like profile."""
    return MoleculeGenerator(profile(), seed=seed)


def generate(count: int, seed: int = DEFAULT_SEED) -> List[str]:
    """Generate *count* EXSCALATE-like SMILES strings."""
    return generator(seed).generate(count)


def generate_scored(count: int, seed: int = DEFAULT_SEED) -> List[Tuple[str, float]]:
    """Generate ``(smiles, docking_score)`` pairs mimicking screening output.

    Scores follow the left-skewed distribution typical of docking campaigns:
    most ligands score poorly, a thin tail scores well (more negative is
    better, as with common docking scoring functions).
    """
    smiles = generate(count, seed=seed)
    rng = np.random.default_rng(seed + 1)
    # Gamma-shaped magnitude gives the long favourable tail.
    scores = -rng.gamma(shape=2.0, scale=2.5, size=count) - 3.0
    return list(zip(smiles, (float(s) for s in scores)))
