"""Molecular fragment library for the synthetic dataset generators.

The compression experiments need corpora whose *textual* statistics resemble
real screening libraries: recurring ring systems, functional groups and linker
motifs are what give a dictionary compressor its 0.3-ish ratios.  Purely
random graphs have almost no substring redundancy, so the generators assemble
molecules from a library of common chemical fragments instead.

Each fragment is a function that mutates a :class:`MolecularGraph` in place,
optionally bonding its first new atom to an attachment atom, and returns the
indices of the atoms it added.  Fragments keep track of plausible valence so
the emitted SMILES passes the library's own validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..smiles.graph import Atom, BondOrder, DEFAULT_VALENCE, MolecularGraph

#: Signature of a fragment builder: (graph, attachment atom or None) -> new atom indices.
FragmentBuilder = Callable[[MolecularGraph, Optional[int]], List[int]]


def free_valence(graph: MolecularGraph, idx: int) -> int:
    """Remaining bonding capacity of atom *idx* under its default maximum valence."""
    atom = graph.atoms[idx]
    maxima = DEFAULT_VALENCE.get(atom.element, (4,))
    # Aromatic ring membership consumes roughly three single-bond equivalents;
    # the +1 slack mirrors the validator.
    slack = 1 if atom.aromatic else 0
    return max(maxima) + slack - graph.bonded_valence(idx) - max(0, -atom.charge)


def _attach(graph: MolecularGraph, attachment: Optional[int], new_idx: int,
            order: BondOrder = BondOrder.SINGLE) -> None:
    if attachment is not None:
        graph.add_bond(attachment, new_idx, order)


# --------------------------------------------------------------------------- #
# Ring fragments
# --------------------------------------------------------------------------- #

def _ring(
    graph: MolecularGraph,
    attachment: Optional[int],
    elements: Sequence[str],
    aromatic: bool,
    bond_orders: Optional[Sequence[BondOrder]] = None,
) -> List[int]:
    """Add a ring of the given *elements*; bond the first ring atom to *attachment*."""
    indices = [
        graph.add_atom(Atom(element=el, aromatic=aromatic)) for el in elements
    ]
    n = len(indices)
    for i in range(n):
        a, b = indices[i], indices[(i + 1) % n]
        if aromatic:
            order = BondOrder.AROMATIC
        elif bond_orders is not None:
            order = bond_orders[i % len(bond_orders)]
        else:
            order = BondOrder.SINGLE
        graph.add_bond(a, b, order)
    _attach(graph, attachment, indices[0])
    return indices


def benzene(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Aromatic six-membered carbon ring (``c1ccccc1``)."""
    return _ring(graph, attachment, ["C"] * 6, aromatic=True)


def kekulized_benzene(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Kekulé benzene (``C1=CC=CC=C1``) — the style of the paper's examples."""
    orders = [BondOrder.DOUBLE, BondOrder.SINGLE] * 3
    return _ring(graph, attachment, ["C"] * 6, aromatic=False, bond_orders=orders)


def pyridine(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Aromatic ring with one nitrogen (``c1ccncc1``)."""
    return _ring(graph, attachment, ["C", "C", "C", "N", "C", "C"], aromatic=True)


def pyrimidine(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Aromatic ring with two nitrogens (``c1cncnc1``)."""
    return _ring(graph, attachment, ["C", "C", "N", "C", "N", "C"], aromatic=True)


def furan(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Five-membered aromatic ring with oxygen (``c1ccoc1``)."""
    return _ring(graph, attachment, ["C", "C", "C", "O", "C"], aromatic=True)


def thiophene(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Five-membered aromatic ring with sulfur (``c1ccsc1``)."""
    return _ring(graph, attachment, ["C", "C", "C", "S", "C"], aromatic=True)


def pyrrole(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Five-membered aromatic ring with NH (written ``[nH]``)."""
    indices = [
        graph.add_atom(Atom(element="C", aromatic=True)),
        graph.add_atom(Atom(element="C", aromatic=True)),
        graph.add_atom(Atom(element="C", aromatic=True)),
        graph.add_atom(Atom(element="N", aromatic=True, explicit_h=1, bracket=True)),
        graph.add_atom(Atom(element="C", aromatic=True)),
    ]
    for i in range(5):
        graph.add_bond(indices[i], indices[(i + 1) % 5], BondOrder.AROMATIC)
    _attach(graph, attachment, indices[0])
    return indices


def cyclohexane(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Saturated six-membered carbon ring (``C1CCCCC1``)."""
    return _ring(graph, attachment, ["C"] * 6, aromatic=False)


def cyclopentane(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Saturated five-membered carbon ring (``C1CCCC1``)."""
    return _ring(graph, attachment, ["C"] * 5, aromatic=False)


def cyclopropane(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Three-membered carbon ring (``C1CC1``) — common in GDB-style enumerations."""
    return _ring(graph, attachment, ["C"] * 3, aromatic=False)


def piperidine(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Saturated six-membered ring with one nitrogen (``C1CCNCC1``)."""
    return _ring(graph, attachment, ["C", "C", "C", "N", "C", "C"], aromatic=False)


def piperazine(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Saturated six-membered ring with two nitrogens (``C1CNCCN1``)."""
    return _ring(graph, attachment, ["C", "C", "N", "C", "C", "N"], aromatic=False)


def morpholine(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Saturated six-membered ring with N and O (``C1COCCN1``)."""
    return _ring(graph, attachment, ["C", "C", "O", "C", "C", "N"], aromatic=False)


def oxetane(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Four-membered ring with oxygen (``C1COC1``)."""
    return _ring(graph, attachment, ["C", "C", "O", "C"], aromatic=False)


# --------------------------------------------------------------------------- #
# Chain / functional-group fragments
# --------------------------------------------------------------------------- #

def methyl(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Single carbon (``C``)."""
    idx = graph.add_atom(Atom(element="C"))
    _attach(graph, attachment, idx)
    return [idx]


def ethyl(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Two-carbon chain (``CC``)."""
    a = graph.add_atom(Atom(element="C"))
    b = graph.add_atom(Atom(element="C"))
    graph.add_bond(a, b)
    _attach(graph, attachment, a)
    return [a, b]


def propyl_chain(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Three-carbon chain (``CCC``)."""
    indices = [graph.add_atom(Atom(element="C")) for _ in range(3)]
    graph.add_bond(indices[0], indices[1])
    graph.add_bond(indices[1], indices[2])
    _attach(graph, attachment, indices[0])
    return indices


def isopropyl(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Branched three-carbon group (``C(C)C``)."""
    center = graph.add_atom(Atom(element="C"))
    m1 = graph.add_atom(Atom(element="C"))
    m2 = graph.add_atom(Atom(element="C"))
    graph.add_bond(center, m1)
    graph.add_bond(center, m2)
    _attach(graph, attachment, center)
    return [center, m1, m2]


def hydroxyl(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Hydroxyl oxygen (``O``)."""
    idx = graph.add_atom(Atom(element="O"))
    _attach(graph, attachment, idx)
    return [idx]


def methoxy(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Methoxy group (``OC``)."""
    o = graph.add_atom(Atom(element="O"))
    c = graph.add_atom(Atom(element="C"))
    graph.add_bond(o, c)
    _attach(graph, attachment, o)
    return [o, c]


def amine(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Primary amine nitrogen (``N``)."""
    idx = graph.add_atom(Atom(element="N"))
    _attach(graph, attachment, idx)
    return [idx]


def halogen(
    graph: MolecularGraph, attachment: Optional[int] = None, element: str = "F"
) -> List[int]:
    """Halogen substituent (defaults to fluorine)."""
    idx = graph.add_atom(Atom(element=element))
    _attach(graph, attachment, idx)
    return [idx]


def fluoro(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Fluorine substituent."""
    return halogen(graph, attachment, "F")


def chloro(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Chlorine substituent."""
    return halogen(graph, attachment, "Cl")


def bromo(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Bromine substituent."""
    return halogen(graph, attachment, "Br")


def carbonyl(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Carbonyl group ``C(=O)`` attached through the carbon."""
    c = graph.add_atom(Atom(element="C"))
    o = graph.add_atom(Atom(element="O"))
    graph.add_bond(c, o, BondOrder.DOUBLE)
    _attach(graph, attachment, c)
    return [c, o]


def carboxylic_acid(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Carboxylic acid ``C(=O)O``."""
    c = graph.add_atom(Atom(element="C"))
    o1 = graph.add_atom(Atom(element="O"))
    o2 = graph.add_atom(Atom(element="O"))
    graph.add_bond(c, o1, BondOrder.DOUBLE)
    graph.add_bond(c, o2, BondOrder.SINGLE)
    _attach(graph, attachment, c)
    return [c, o1, o2]


def ester(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Methyl ester ``C(=O)OC``."""
    c = graph.add_atom(Atom(element="C"))
    o1 = graph.add_atom(Atom(element="O"))
    o2 = graph.add_atom(Atom(element="O"))
    me = graph.add_atom(Atom(element="C"))
    graph.add_bond(c, o1, BondOrder.DOUBLE)
    graph.add_bond(c, o2, BondOrder.SINGLE)
    graph.add_bond(o2, me, BondOrder.SINGLE)
    _attach(graph, attachment, c)
    return [c, o1, o2, me]


def amide(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Amide group ``C(=O)N``."""
    c = graph.add_atom(Atom(element="C"))
    o = graph.add_atom(Atom(element="O"))
    n = graph.add_atom(Atom(element="N"))
    graph.add_bond(c, o, BondOrder.DOUBLE)
    graph.add_bond(c, n, BondOrder.SINGLE)
    _attach(graph, attachment, c)
    return [c, o, n]


def sulfonamide(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Sulfonamide group ``S(=O)(=O)N``."""
    s = graph.add_atom(Atom(element="S"))
    o1 = graph.add_atom(Atom(element="O"))
    o2 = graph.add_atom(Atom(element="O"))
    n = graph.add_atom(Atom(element="N"))
    graph.add_bond(s, o1, BondOrder.DOUBLE)
    graph.add_bond(s, o2, BondOrder.DOUBLE)
    graph.add_bond(s, n, BondOrder.SINGLE)
    _attach(graph, attachment, s)
    return [s, o1, o2, n]


def nitro(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Nitro group written in its charge-separated form ``[N+](=O)[O-]``."""
    n = graph.add_atom(Atom(element="N", charge=1, bracket=True))
    o1 = graph.add_atom(Atom(element="O"))
    o2 = graph.add_atom(Atom(element="O", charge=-1, bracket=True))
    graph.add_bond(n, o1, BondOrder.DOUBLE)
    graph.add_bond(n, o2, BondOrder.SINGLE)
    _attach(graph, attachment, n)
    return [n, o1, o2]


def trifluoromethyl(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """CF3 group ``C(F)(F)F``."""
    c = graph.add_atom(Atom(element="C"))
    fs = [graph.add_atom(Atom(element="F")) for _ in range(3)]
    for f in fs:
        graph.add_bond(c, f)
    _attach(graph, attachment, c)
    return [c, *fs]


def nitrile(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Nitrile group ``C#N``."""
    c = graph.add_atom(Atom(element="C"))
    n = graph.add_atom(Atom(element="N"))
    graph.add_bond(c, n, BondOrder.TRIPLE)
    _attach(graph, attachment, c)
    return [c, n]


def alkene_linker(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Two-carbon double-bond linker ``C=C``."""
    a = graph.add_atom(Atom(element="C"))
    b = graph.add_atom(Atom(element="C"))
    graph.add_bond(a, b, BondOrder.DOUBLE)
    _attach(graph, attachment, a)
    return [a, b]


def ether_linker(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """Ether oxygen followed by a carbon ``OC`` (same shape as methoxy but named as linker)."""
    return methoxy(graph, attachment)


def chiral_carbon(graph: MolecularGraph, attachment: Optional[int] = None) -> List[int]:
    """A tetrahedral stereocentre written as ``[C@H]`` or ``[C@@H]`` with a methyl arm."""
    c = graph.add_atom(Atom(element="C", chirality="@", explicit_h=1, bracket=True))
    m = graph.add_atom(Atom(element="C"))
    graph.add_bond(c, m)
    _attach(graph, attachment, c)
    return [c, m]


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FragmentSpec:
    """A named fragment with its builder, size and category."""

    name: str
    builder: FragmentBuilder
    heavy_atoms: int
    category: str  # "ring", "chain", "decoration"


#: Every fragment the generators can draw from, keyed by name.
FRAGMENT_LIBRARY: Dict[str, FragmentSpec] = {
    spec.name: spec
    for spec in [
        FragmentSpec("benzene", benzene, 6, "ring"),
        FragmentSpec("kekulized_benzene", kekulized_benzene, 6, "ring"),
        FragmentSpec("pyridine", pyridine, 6, "ring"),
        FragmentSpec("pyrimidine", pyrimidine, 6, "ring"),
        FragmentSpec("furan", furan, 5, "ring"),
        FragmentSpec("thiophene", thiophene, 5, "ring"),
        FragmentSpec("pyrrole", pyrrole, 5, "ring"),
        FragmentSpec("cyclohexane", cyclohexane, 6, "ring"),
        FragmentSpec("cyclopentane", cyclopentane, 5, "ring"),
        FragmentSpec("cyclopropane", cyclopropane, 3, "ring"),
        FragmentSpec("piperidine", piperidine, 6, "ring"),
        FragmentSpec("piperazine", piperazine, 6, "ring"),
        FragmentSpec("morpholine", morpholine, 6, "ring"),
        FragmentSpec("oxetane", oxetane, 4, "ring"),
        FragmentSpec("methyl", methyl, 1, "chain"),
        FragmentSpec("ethyl", ethyl, 2, "chain"),
        FragmentSpec("propyl_chain", propyl_chain, 3, "chain"),
        FragmentSpec("isopropyl", isopropyl, 3, "chain"),
        FragmentSpec("alkene_linker", alkene_linker, 2, "chain"),
        FragmentSpec("ether_linker", ether_linker, 2, "chain"),
        FragmentSpec("chiral_carbon", chiral_carbon, 2, "chain"),
        FragmentSpec("hydroxyl", hydroxyl, 1, "decoration"),
        FragmentSpec("methoxy", methoxy, 2, "decoration"),
        FragmentSpec("amine", amine, 1, "decoration"),
        FragmentSpec("fluoro", fluoro, 1, "decoration"),
        FragmentSpec("chloro", chloro, 1, "decoration"),
        FragmentSpec("bromo", bromo, 1, "decoration"),
        FragmentSpec("carbonyl", carbonyl, 2, "decoration"),
        FragmentSpec("carboxylic_acid", carboxylic_acid, 3, "decoration"),
        FragmentSpec("ester", ester, 4, "decoration"),
        FragmentSpec("amide", amide, 3, "decoration"),
        FragmentSpec("sulfonamide", sulfonamide, 4, "decoration"),
        FragmentSpec("nitro", nitro, 3, "decoration"),
        FragmentSpec("trifluoromethyl", trifluoromethyl, 4, "decoration"),
        FragmentSpec("nitrile", nitrile, 2, "decoration"),
    ]
}


def fragment_names(category: Optional[str] = None) -> List[str]:
    """Names of all fragments, optionally filtered by category."""
    return [
        name
        for name, spec in FRAGMENT_LIBRARY.items()
        if category is None or spec.category == category
    ]


def get_fragment(name: str) -> FragmentSpec:
    """Look up a fragment by name.

    Raises
    ------
    KeyError
        If no fragment with that name exists.
    """
    return FRAGMENT_LIBRARY[name]
