"""MIXED synthetic dataset.

The paper builds its MIXED training set by taking the first million ligands of
each of GDB-17, MEDIATE and EXSCALATE (Section V-A) and uses it both to train
the shared dictionary and as the evaluation corpus for Table I, Figure 4 and
Figure 5.  This module mirrors that construction by interleaving equal shares
of the three synthetic generators.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from . import exscalate, gdb17, mediate

#: Names of the constituent datasets, in the paper's order.
COMPONENTS = ("GDB-17", "MEDIATE", "EXSCALATE")


def generate(count: int, seed: int = 0) -> List[str]:
    """Generate a MIXED corpus of *count* SMILES (equal thirds, interleaved).

    Interleaving (rather than concatenating) keeps any prefix of the corpus
    representative of all three sources, the same property the paper relies on
    when it samples 50 000 random SMILES from MIXED for Table I.
    """
    per_source = count // 3
    remainder = count - 3 * per_source
    parts = [
        gdb17.generate(per_source + (1 if remainder > 0 else 0), seed=gdb17.DEFAULT_SEED + seed),
        mediate.generate(per_source + (1 if remainder > 1 else 0), seed=mediate.DEFAULT_SEED + seed),
        exscalate.generate(per_source, seed=exscalate.DEFAULT_SEED + seed),
    ]
    mixed: List[str] = []
    longest = max(len(p) for p in parts) if parts else 0
    for i in range(longest):
        for part in parts:
            if i < len(part):
                mixed.append(part[i])
    return mixed[:count]


def generate_components(count_per_source: int, seed: int = 0) -> Dict[str, List[str]]:
    """Generate each component dataset separately (used by Table II).

    Returns a mapping from dataset name to its corpus, plus the ``"MIXED"``
    interleaving of the three.
    """
    components = {
        "GDB-17": gdb17.generate(count_per_source, seed=gdb17.DEFAULT_SEED + seed),
        "MEDIATE": mediate.generate(count_per_source, seed=mediate.DEFAULT_SEED + seed),
        "EXSCALATE": exscalate.generate(count_per_source, seed=exscalate.DEFAULT_SEED + seed),
    }
    components["MIXED"] = interleave(list(components.values()))[: count_per_source]
    return components


def interleave(parts: Sequence[Sequence[str]]) -> List[str]:
    """Round-robin interleave several corpora into one list."""
    mixed: List[str] = []
    longest = max((len(p) for p in parts), default=0)
    for i in range(longest):
        for part in parts:
            if i < len(part):
                mixed.append(part[i])
    return mixed
