"""MEDIATE-like synthetic dataset.

The MEDIATE library (Vistoli et al. 2023, reference [19] of the paper) spans
commercial drug-like compounds through natural products — a *heterogeneous*
corpus.  Table II shows dictionaries trained on it generalize well.  This
profile uses the full fragment vocabulary, drug-like sizes, stereocentres,
charged groups and both aromatic and Kekulé ring styles.
"""

from __future__ import annotations

from typing import List

from .generator import GenerationProfile, MoleculeGenerator

#: Default sampling seed, kept distinct per dataset so MIXED is genuinely varied.
DEFAULT_SEED = 19


def profile() -> GenerationProfile:
    """The MEDIATE-like generation profile."""
    return GenerationProfile(
        name="MEDIATE",
        min_heavy_atoms=18,
        max_heavy_atoms=45,
        fragment_weights={
            # Wide, drug-like vocabulary.
            "benzene": 5.0,
            "kekulized_benzene": 1.5,
            "pyridine": 2.5,
            "pyrimidine": 1.5,
            "furan": 1.0,
            "thiophene": 1.0,
            "pyrrole": 1.0,
            "cyclohexane": 2.0,
            "cyclopentane": 1.5,
            "piperidine": 2.0,
            "piperazine": 1.5,
            "morpholine": 1.5,
            "methyl": 3.0,
            "ethyl": 2.0,
            "propyl_chain": 1.0,
            "isopropyl": 1.0,
            "alkene_linker": 1.0,
            "ether_linker": 1.5,
            "chiral_carbon": 1.5,
            "hydroxyl": 2.0,
            "methoxy": 2.0,
            "amine": 2.0,
            "fluoro": 1.5,
            "chloro": 1.5,
            "bromo": 0.5,
            "carbonyl": 1.5,
            "carboxylic_acid": 1.5,
            "ester": 1.0,
            "amide": 2.5,
            "sulfonamide": 1.0,
            "nitro": 0.8,
            "trifluoromethyl": 1.0,
            "nitrile": 0.8,
        },
        decoration_probability=0.45,
        max_attachment_degree=3,
        scaffold_count=350,
        substituent_range=(1, 3),
    )


def generator(seed: int = DEFAULT_SEED) -> MoleculeGenerator:
    """A seeded generator for the MEDIATE-like profile."""
    return MoleculeGenerator(profile(), seed=seed)


def generate(count: int, seed: int = DEFAULT_SEED) -> List[str]:
    """Generate *count* MEDIATE-like SMILES strings."""
    return generator(seed).generate(count)
