"""Fragment-based synthetic molecule generator.

The generator assembles molecules by stitching fragments from
:mod:`repro.datasets.fragments` onto a growing molecular graph, then writes
them out as SMILES with the *sequential* ring-numbering policy (fresh
identifier per ring) so the corpora exhibit the un-optimized numbering the
ZSMILES preprocessor targets (Section IV-A).

A :class:`GenerationProfile` controls molecule size, fragment preferences and
decoration probabilities; the dataset modules (:mod:`~repro.datasets.gdb17`,
:mod:`~repro.datasets.mediate`, :mod:`~repro.datasets.exscalate`) are thin
profiles over this engine.  Generation is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from ..smiles.graph import MolecularGraph
from ..smiles.validate import is_valid
from ..smiles.writer import write
from .fragments import FRAGMENT_LIBRARY, FragmentSpec, free_valence


@dataclass
class GenerationProfile:
    """Tunable knobs describing the "texture" of one synthetic dataset.

    Attributes
    ----------
    name:
        Dataset name recorded in metadata.
    min_heavy_atoms, max_heavy_atoms:
        Target molecule size range (heavy atoms).
    fragment_weights:
        Relative sampling weight per fragment name; fragments absent from the
        mapping are never used.  Narrow weight sets yield homogeneous corpora
        (GDB-17-like), wide sets yield heterogeneous ones (MEDIATE-like).
    decoration_probability:
        Probability of adding one decoration fragment after each growth step.
    max_attachment_degree:
        Maximum number of bonds an atom may accumulate through attachments.
        Kekulé versus aromatic ring style is chosen by weighting the
        ``kekulized_benzene`` fragment against ``benzene`` in
        ``fragment_weights``.
    scaffold_count:
        When set, the generator works in *combinatorial series* mode: it first
        builds this many scaffold molecules and then produces each output
        molecule by decorating a randomly chosen scaffold with a few
        substituents.  This mirrors how real screening libraries are
        enumerated (a scaffold × substituent cartesian product) and is what
        gives them their high textual redundancy.  ``None`` disables series
        mode (every molecule grown from scratch).
    substituent_range:
        ``(min, max)`` number of substituent fragments attached to the chosen
        scaffold in series mode.
    """

    name: str
    min_heavy_atoms: int = 10
    max_heavy_atoms: int = 30
    fragment_weights: Dict[str, float] = field(default_factory=dict)
    decoration_probability: float = 0.3
    max_attachment_degree: int = 3
    scaffold_count: Optional[int] = None
    substituent_range: Tuple[int, int] = (1, 3)

    def __post_init__(self) -> None:
        if self.min_heavy_atoms < 1:
            raise DatasetError("min_heavy_atoms must be >= 1")
        if self.max_heavy_atoms < self.min_heavy_atoms:
            raise DatasetError("max_heavy_atoms must be >= min_heavy_atoms")
        unknown = set(self.fragment_weights) - set(FRAGMENT_LIBRARY)
        if unknown:
            raise DatasetError(f"unknown fragments in profile: {sorted(unknown)}")
        if not self.fragment_weights:
            raise DatasetError("fragment_weights must not be empty")

    def fragments(self, category: Optional[str] = None) -> List[Tuple[FragmentSpec, float]]:
        """``(spec, weight)`` pairs for fragments in this profile (optionally by category)."""
        out: List[Tuple[FragmentSpec, float]] = []
        for name, weight in self.fragment_weights.items():
            spec = FRAGMENT_LIBRARY[name]
            if category is None or spec.category == category:
                out.append((spec, weight))
        return out


class MoleculeGenerator:
    """Seeded generator of valid SMILES strings for one profile."""

    def __init__(self, profile: GenerationProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._scaffolds: Optional[List[str]] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate_graph(self, target: Optional[int] = None) -> MolecularGraph:
        """Generate one molecular graph grown fragment-by-fragment."""
        rng = self._rng
        profile = self.profile
        if target is None:
            target = int(rng.integers(profile.min_heavy_atoms, profile.max_heavy_atoms + 1))
        graph = MolecularGraph()

        # Seed fragment: prefer a ring when the profile has any.
        seed_pool = profile.fragments("ring") or profile.fragments()
        spec = self._pick(seed_pool)
        spec.builder(graph, None)

        guard = 0
        while graph.atom_count() < target and guard < 100:
            guard += 1
            attachment = self._pick_attachment(graph)
            if attachment is None:
                break
            remaining = target - graph.atom_count()
            pool = [
                (s, w)
                for s, w in self.profile.fragments()
                if s.heavy_atoms <= max(1, remaining)
            ]
            if not pool:
                break
            spec = self._pick(pool)
            spec.builder(graph, attachment)
            # Optional extra decoration on a random atom.
            if rng.random() < profile.decoration_probability:
                deco_pool = [
                    (s, w)
                    for s, w in profile.fragments("decoration")
                    if s.heavy_atoms <= max(1, target - graph.atom_count())
                ]
                deco_attachment = self._pick_attachment(graph)
                if deco_pool and deco_attachment is not None:
                    self._pick(deco_pool).builder(graph, deco_attachment)
        return graph

    def generate_smiles(self) -> str:
        """Generate one valid SMILES string (regenerates on the rare invalid draw)."""
        for _ in range(10):
            if self.profile.scaffold_count is not None:
                graph = self._generate_series_graph()
            else:
                graph = self.generate_graph()
            smiles = write(graph, ring_policy="sequential")
            if is_valid(smiles):
                return smiles
        raise DatasetError(
            f"profile {self.profile.name!r} failed to produce a valid SMILES in 10 attempts"
        )

    # ------------------------------------------------------------------ #
    # Combinatorial series mode
    # ------------------------------------------------------------------ #
    def _scaffold_library(self) -> List[str]:
        """Lazily build the scaffold SMILES this generator decorates in series mode."""
        if self._scaffolds is None:
            assert self.profile.scaffold_count is not None
            scaffolds: List[str] = []
            # Scaffolds occupy roughly two thirds of the target size so the
            # substituents added per molecule keep sizes in range.
            lo = max(3, int(self.profile.min_heavy_atoms * 0.6))
            hi = max(lo + 1, int(self.profile.max_heavy_atoms * 0.7))
            for _ in range(self.profile.scaffold_count):
                target = int(self._rng.integers(lo, hi + 1))
                graph = self.generate_graph(target=target)
                scaffolds.append(write(graph, ring_policy="sequential"))
            self._scaffolds = scaffolds
        return self._scaffolds

    def _generate_series_graph(self) -> MolecularGraph:
        """Pick a scaffold and decorate it with a few substituent fragments."""
        from ..smiles.parser import parse  # local import avoids a cycle at module load

        scaffolds = self._scaffold_library()
        scaffold_smiles = scaffolds[int(self._rng.integers(0, len(scaffolds)))]
        graph = parse(scaffold_smiles)
        lo, hi = self.profile.substituent_range
        substituents = int(self._rng.integers(lo, hi + 1))
        pool = self.profile.fragments("decoration") or self.profile.fragments("chain")
        for _ in range(substituents):
            if graph.atom_count() >= self.profile.max_heavy_atoms:
                break
            attachment = self._pick_attachment(graph)
            if attachment is None or not pool:
                break
            self._pick(pool).builder(graph, attachment)
        return graph

    def generate(self, count: int) -> List[str]:
        """Generate *count* SMILES strings."""
        return [self.generate_smiles() for _ in range(count)]

    def iter_generate(self, count: int) -> Iterator[str]:
        """Lazily generate *count* SMILES strings."""
        for _ in range(count):
            yield self.generate_smiles()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _pick(self, pool: Sequence[Tuple[FragmentSpec, float]]) -> FragmentSpec:
        specs = [spec for spec, _ in pool]
        weights = np.array([w for _, w in pool], dtype=float)
        total = weights.sum()
        if total <= 0:
            raise DatasetError("fragment pool has non-positive total weight")
        choice = self._rng.choice(len(specs), p=weights / total)
        return specs[int(choice)]

    def _pick_attachment(self, graph: MolecularGraph) -> Optional[int]:
        """Pick a random atom with spare valence and acceptable degree, or ``None``."""
        candidates = [
            idx
            for idx in range(graph.atom_count())
            if free_valence(graph, idx) >= 1
            and graph.degree(idx) < self.profile.max_attachment_degree + 2
            and graph.atoms[idx].element not in ("F", "Cl", "Br", "I")
        ]
        if not candidates:
            return None
        return int(self._rng.choice(candidates))


def generate_dataset(
    profile: GenerationProfile, count: int, seed: int = 0
) -> List[str]:
    """Generate *count* SMILES for *profile* with the given *seed*."""
    return MoleculeGenerator(profile, seed=seed).generate(count)


def dataset_statistics(smiles_list: Sequence[str]) -> Dict[str, float]:
    """Corpus statistics used in reports and dataset sanity tests."""
    if not smiles_list:
        return {"count": 0, "mean_length": 0.0, "min_length": 0, "max_length": 0,
                "total_bytes": 0, "distinct_fraction": 0.0}
    lengths = [len(s) for s in smiles_list]
    return {
        "count": float(len(smiles_list)),
        "mean_length": float(np.mean(lengths)),
        "min_length": float(min(lengths)),
        "max_length": float(max(lengths)),
        "total_bytes": float(sum(lengths) + len(lengths)),
        "distinct_fraction": len(set(smiles_list)) / len(smiles_list),
    }
