"""ZSMILES reproduction: efficient random-access SMILES storage for virtual screening.

The compression surface is unified behind the batch-first
:class:`~repro.engine.ZSmilesEngine`: one facade, configured by a single
:class:`~repro.engine.EngineConfig`, running on pluggable execution backends
(``"serial"``, ``"process"``, or ``"auto"``, which picks the process pool for
large batches).  Every batch operation returns a
:class:`~repro.engine.BatchResult` carrying the transformed records, the
aggregate :class:`~repro.core.codec.CodecStats` and the wall time::

    from repro import EngineConfig, ZSmilesEngine

    engine = ZSmilesEngine.train(training_smiles, EngineConfig(lmax=8))
    result = engine.compress_batch(library)          # BatchResult
    engine.compress_file("library.smi")              # .smi -> .zsmi
    restored = engine.decompress_batch(result.records).records

Migration from the pre-engine surface (the old names keep working as thin
shims delegating to the engine):

===================================================  =========================================================
Old entry point                                      Engine equivalent
===================================================  =========================================================
``ZSmilesCodec.train(corpus, lmax=8)``               ``ZSmilesEngine.train(corpus, lmax=8)``
``codec.compress_many(xs)``                          ``engine.compress_batch(xs).records``
``codec.decompress_many(xs)``                        ``engine.decompress_batch(xs).records``
``codec.evaluate(corpus)``                           ``engine.evaluate(corpus)``
``compress_file(codec, path)``                       ``engine.compress_file(path)``
``decompress_file(codec, path)``                     ``engine.decompress_file(path)``
``ParallelCodec(codec, workers=8).compress_many``    ``ZSmilesEngine.from_codec(codec, backend="process", jobs=8).compress_batch``
``BaselineCodec.compression_ratio(corpus)``          ``BaselineBackend(codec).compress_batch(corpus).stats.ratio``
===================================================  =========================================================

Single-record helpers (``engine.compress`` / ``engine.decompress`` /
``engine.preprocess``) remain available for interactive use; the lower-level
subpackages (``repro.smiles``, ``repro.core``, ``repro.dictionary``,
``repro.datasets``, ``repro.baselines``, ``repro.parallel``,
``repro.screening``, ``repro.experiments``) are unchanged building blocks.

Corpora are served at scale from the block-compressed ``.zss`` store
(:mod:`repro.store`): ``pack_records`` / ``pack_file`` pack through the
engine (parallel across blocks), ``CorpusStore`` serves ``get(i)`` by
decoding a single block, and the flat ``RandomAccessReader`` remains the
documented fallback behind the shared ``RecordReader`` protocol
(``open_reader`` picks by suffix).  Sharded ``library.json`` corpora serve
through ``CorpusLibrary`` / ``AsyncCorpusLibrary`` (:mod:`repro.library`),
and ``zsmiles serve`` exposes any packed corpus over HTTP
(:mod:`repro.server`) — ``open_reader("http://…")`` consumes it through the
same protocol.
"""

from ._version import __version__
from .core.codec import CodecStats, ZSmilesCodec
from .core.compressor import Compressor, ParseStrategy
from .core.decompressor import Decompressor
from .core.random_access import LineIndex, RandomAccessReader
from .core.streaming import compress_file, decompress_file
from .dictionary.codec_table import CodecTable
from .dictionary.generator import DictionaryConfig, train_dictionary
from .dictionary.prepopulation import PrePopulation
from .dictionary.serialization import load as load_dictionary
from .dictionary.serialization import save as save_dictionary
from .engine import (
    BaselineBackend,
    BatchResult,
    BlockKernel,
    CodecAutomaton,
    CompressionBackend,
    EngineConfig,
    KernelBackend,
    ProcessPoolBackend,
    SerialBackend,
    ZSmilesEngine,
    available_backends,
    register_backend,
)
from .library import (
    AsyncCorpusLibrary,
    CorpusLibrary,
    LibraryManifest,
    LibraryWriter,
    ShardedCorpusStore,
    compose_libraries,
    pack_library,
    pack_library_file,
)
from .server import (
    AsyncCorpusClient,
    AsyncFailoverCorpusClient,
    BackgroundServer,
    CorpusClient,
    CorpusServer,
    FailoverCorpusClient,
    RetryPolicy,
    ServerFleet,
)
from .curation import (
    DictionaryIdentity,
    IngestPipeline,
    ReservoirSampler,
    pin_identity,
    repack_library,
)
from .campaign import (
    CampaignConfig,
    CampaignDriver,
    CampaignState,
    GenerationStats,
)
from .preprocess.pipeline import PreprocessingPipeline, make_pipeline
from .preprocess.ring_renumber import renumber_rings
from .store import (
    CorpusStore,
    FsckReport,
    RecordReader,
    ShardReader,
    ShardWriter,
    StoreInfo,
    fsck_path,
    open_reader,
    pack_file,
    pack_records,
    repair_path,
)

__all__ = [
    "__version__",
    # Engine surface (preferred).
    "ZSmilesEngine",
    "EngineConfig",
    "BatchResult",
    "BlockKernel",
    "CodecAutomaton",
    "CompressionBackend",
    "KernelBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "BaselineBackend",
    "available_backends",
    "register_backend",
    # Sharded serving layer (library.json manifests, async surface).
    "AsyncCorpusLibrary",
    "CorpusLibrary",
    "LibraryManifest",
    "LibraryWriter",
    "ShardedCorpusStore",
    "compose_libraries",
    "pack_library",
    "pack_library_file",
    # Network serving front (HTTP server, fleet, typed clients).
    "AsyncCorpusClient",
    "AsyncFailoverCorpusClient",
    "BackgroundServer",
    "CorpusClient",
    "CorpusServer",
    "FailoverCorpusClient",
    "RetryPolicy",
    "ServerFleet",
    # Curation subsystem (streaming ingest, dictionary lifecycle, repack).
    "DictionaryIdentity",
    "IngestPipeline",
    "ReservoirSampler",
    "pin_identity",
    "repack_library",
    # Generative GA screening campaigns.
    "CampaignConfig",
    "CampaignDriver",
    "CampaignState",
    "GenerationStats",
    # Block-compressed corpus store (.zss) and the shared reader protocol.
    "CorpusStore",
    "FsckReport",
    "RecordReader",
    "ShardReader",
    "ShardWriter",
    "StoreInfo",
    "fsck_path",
    "open_reader",
    "pack_file",
    "pack_records",
    "repair_path",
    # Building blocks and legacy shims.
    "CodecStats",
    "ZSmilesCodec",
    "Compressor",
    "ParseStrategy",
    "Decompressor",
    "LineIndex",
    "RandomAccessReader",
    "compress_file",
    "decompress_file",
    "CodecTable",
    "DictionaryConfig",
    "train_dictionary",
    "PrePopulation",
    "load_dictionary",
    "save_dictionary",
    "PreprocessingPipeline",
    "make_pipeline",
    "renumber_rings",
]
