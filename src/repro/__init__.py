"""ZSMILES reproduction: efficient random-access SMILES storage for virtual screening.

The public API is organised in subpackages (``repro.smiles``, ``repro.core``,
``repro.dictionary``, ``repro.datasets``, ``repro.baselines``,
``repro.parallel``, ``repro.screening``, ``repro.experiments``); the names a
typical user needs — the codec, the dictionary types, the preprocessing
helpers and the random-access reader — are re-exported here.
"""

from ._version import __version__
from .core.codec import CodecStats, ZSmilesCodec
from .core.compressor import Compressor, ParseStrategy
from .core.decompressor import Decompressor
from .core.random_access import LineIndex, RandomAccessReader
from .core.streaming import compress_file, decompress_file
from .dictionary.codec_table import CodecTable
from .dictionary.generator import DictionaryConfig, train_dictionary
from .dictionary.prepopulation import PrePopulation
from .dictionary.serialization import load as load_dictionary
from .dictionary.serialization import save as save_dictionary
from .preprocess.pipeline import PreprocessingPipeline, make_pipeline
from .preprocess.ring_renumber import renumber_rings

__all__ = [
    "__version__",
    "CodecStats",
    "ZSmilesCodec",
    "Compressor",
    "ParseStrategy",
    "Decompressor",
    "LineIndex",
    "RandomAccessReader",
    "compress_file",
    "decompress_file",
    "CodecTable",
    "DictionaryConfig",
    "train_dictionary",
    "PrePopulation",
    "load_dictionary",
    "save_dictionary",
    "PreprocessingPipeline",
    "make_pipeline",
    "renumber_rings",
]
