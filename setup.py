"""Setuptools shim.

Kept so the package installs in environments whose setuptools predates native
``bdist_wheel`` support for PEP 517 editable installs (e.g. offline HPC nodes):
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to the
legacy develop install through this file.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
